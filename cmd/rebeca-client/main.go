// Command rebeca-client is a TCP pub/sub client for rebeca-broker
// daemons: subscribe with a content-based filter and print deliveries, or
// publish notifications given as attribute lists.
//
// Usage:
//
//	# consume: print matching notifications as they arrive
//	rebeca-client -id alice -broker localhost:7001 \
//	    -subscribe 'type = "quote" && sym = "ACME"' -expect 3
//
//	# produce: advertise, then publish a few notifications
//	rebeca-client -id ticker -broker localhost:7001 \
//	    -advertise 'type = "quote"' \
//	    -publish 'type=quote,sym=ACME,price=120' \
//	    -publish 'type=quote,sym=ACME,price=99'
//
// -broker accepts a comma-separated failover list: the client attaches to
// the first address that answers, and when that connection dies it
// re-attaches to the next, replaying its advertisement and subscription
// (as a relocation when -mobile is set, so the overlay treats the switch
// like a physical move). Attribute values in -publish parse like filter
// literals: integers, floats, true/false, otherwise strings. See
// OPERATIONS.md for the full flag reference.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-client:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// clientFlags holds every command-line option. The struct exists so the
// flag set can be constructed without running the client — the
// OPERATIONS.md drift guard walks it with VisitAll.
type clientFlags struct {
	id        string
	brokers   string
	subscribe string
	mobile    bool
	advertise string
	expect    int
	timeout   time.Duration
	publishes multiFlag
}

// newFlagSet declares the rebeca-client flags on a fresh FlagSet.
func newFlagSet() (*flag.FlagSet, *clientFlags) {
	cfg := &clientFlags{}
	fs := flag.NewFlagSet("rebeca-client", flag.ContinueOnError)
	fs.StringVar(&cfg.id, "id", "", "client id (required)")
	fs.StringVar(&cfg.brokers, "broker", "localhost:7001",
		"comma-separated broker TCP addresses (first reachable wins; the rest are failover targets)")
	fs.StringVar(&cfg.subscribe, "subscribe", "", "subscription filter expression")
	fs.BoolVar(&cfg.mobile, "mobile", false, "make the subscription relocatable")
	fs.StringVar(&cfg.advertise, "advertise", "", "advertisement filter expression")
	fs.IntVar(&cfg.expect, "expect", 0, "exit after this many deliveries (0 = run until timeout)")
	fs.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "maximum time to wait for deliveries")
	fs.Var(&cfg.publishes, "publish", "notification to publish as k=v,k2=v2 (repeatable)")
	return fs, cfg
}

// session is one attachment of the client to a broker, plus the state a
// failover must carry over: the last delivered sequence number and the
// relocation epoch.
type session struct {
	cfg     *clientFlags
	addrs   []string
	current int // index into addrs of the live attachment

	link    *transport.TCPLink
	lastSeq uint64
	epoch   uint64

	deliveries chan wire.Deliver
}

// attach dials the failover list starting at the given index and installs
// the advertisement and subscription on the first broker that answers.
// relocate marks the subscription as a relocation of the previous one.
func (s *session) attach(start int, relocate bool) error {
	var firstErr error
	for i := 0; i < len(s.addrs); i++ {
		idx := (start + i) % len(s.addrs)
		link, err := transport.DialTCPClient(s.addrs[idx], wire.ClientID(s.cfg.id), transport.ReceiverFunc(func(in transport.Inbound) {
			if in.Msg.Type == wire.TypeDeliver && in.Msg.Deliver != nil {
				s.deliveries <- *in.Msg.Deliver
			}
		}))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.link, s.current = link, idx
		return s.replay(relocate)
	}
	return fmt.Errorf("no broker reachable: %w", firstErr)
}

// replay re-issues the advertisement and subscription on the new link.
func (s *session) replay(relocate bool) error {
	if s.cfg.advertise != "" {
		f, err := filter.Parse(s.cfg.advertise)
		if err != nil {
			return fmt.Errorf("advertise: %w", err)
		}
		msg := wire.NewAdvertise(wire.Subscription{
			Filter: f, Client: wire.ClientID(s.cfg.id), ID: "adv",
		})
		if err := s.link.Send(msg); err != nil {
			return err
		}
	}
	if s.cfg.subscribe != "" {
		f, err := filter.Parse(s.cfg.subscribe)
		if err != nil {
			return fmt.Errorf("subscribe: %w", err)
		}
		sub := wire.Subscription{
			Filter: f, Client: wire.ClientID(s.cfg.id), ID: "sub", IsMobile: s.cfg.mobile,
		}
		if relocate {
			sub.LastSeq = s.lastSeq
			if s.cfg.mobile {
				s.epoch++
				sub.Relocate = true
				sub.RelocEpoch = s.epoch
			}
		}
		if err := s.link.Send(wire.NewSubscribe(sub)); err != nil {
			return err
		}
	}
	return nil
}

func run(args []string, out *os.File) error {
	fs, cfg := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.id == "" {
		return errors.New("-id is required")
	}
	var addrs []string
	for _, a := range strings.Split(cfg.brokers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return errors.New("-broker is required")
	}

	s := &session{cfg: cfg, addrs: addrs, deliveries: make(chan wire.Deliver, 64)}
	if err := s.attach(0, false); err != nil {
		return err
	}
	defer func() { _ = s.link.Close() }()

	for _, p := range cfg.publishes {
		n, err := ParseNotification(p)
		if err != nil {
			return fmt.Errorf("publish %q: %w", p, err)
		}
		if err := s.link.Send(wire.NewPublish(n)); err != nil {
			return err
		}
	}
	if cfg.subscribe == "" {
		// Producer-only invocation: everything was sent, nothing to wait
		// for.
		return nil
	}

	received := 0
	deadline := time.After(cfg.timeout)
	for {
		select {
		case d := <-s.deliveries:
			if d.Item.Seq <= s.lastSeq {
				// A failover replay can resend what was already printed.
				continue
			}
			s.lastSeq = d.Item.Seq
			received++
			tag := ""
			if d.Replayed {
				tag = " (replayed)"
			}
			fmt.Fprintf(out, "#%d %s%s\n", d.Item.Seq, d.Item.Notif, tag)
			if cfg.expect > 0 && received >= cfg.expect {
				return nil
			}
		case <-s.link.Done():
			if len(addrs) == 1 {
				return fmt.Errorf("broker connection lost after %d deliveries", received)
			}
			log.Printf("broker %s unreachable, failing over", addrs[s.current])
			if err := s.attach(s.current+1, true); err != nil {
				return fmt.Errorf("failover: %w", err)
			}
			log.Printf("re-attached to %s", addrs[s.current])
		case <-deadline:
			if cfg.expect > 0 {
				return fmt.Errorf("timed out after %d of %d deliveries", received, cfg.expect)
			}
			return nil
		}
	}
}

// ParseNotification builds a notification from "k=v,k2=v2" syntax. Values
// parse as int, then float, then bool, falling back to string.
func ParseNotification(src string) (message.Notification, error) {
	attrs := make(map[string]message.Value)
	for _, pair := range strings.Split(src, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, raw, ok := strings.Cut(pair, "=")
		if !ok {
			return message.Notification{}, fmt.Errorf("missing '=' in %q", pair)
		}
		name = strings.TrimSpace(name)
		raw = strings.TrimSpace(raw)
		if name == "" {
			return message.Notification{}, fmt.Errorf("empty attribute name in %q", pair)
		}
		attrs[name] = parseValue(raw)
	}
	if len(attrs) == 0 {
		return message.Notification{}, errors.New("empty notification")
	}
	return message.New(attrs), nil
}

func parseValue(raw string) message.Value {
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return message.Int(i)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return message.Float(f)
	}
	switch raw {
	case "true":
		return message.Bool(true)
	case "false":
		return message.Bool(false)
	}
	return message.String(strings.Trim(raw, `"'`))
}
