// Command rebeca-client is a TCP pub/sub client for rebeca-broker
// daemons: subscribe with a content-based filter and print deliveries, or
// publish notifications given as attribute lists.
//
// Usage:
//
//	# consume: print matching notifications as they arrive
//	rebeca-client -id alice -broker localhost:7001 \
//	    -subscribe 'type = "quote" && sym = "ACME"' -expect 3
//
//	# produce: advertise, then publish a few notifications
//	rebeca-client -id ticker -broker localhost:7001 \
//	    -advertise 'type = "quote"' \
//	    -publish 'type=quote,sym=ACME,price=120' \
//	    -publish 'type=quote,sym=ACME,price=99'
//
// Attribute values in -publish parse like filter literals: integers,
// floats, true/false, otherwise strings.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-client:", err)
		os.Exit(1)
	}
}

// multiFlag collects repeated string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("rebeca-client", flag.ContinueOnError)
	id := fs.String("id", "", "client id (required)")
	brokerAddr := fs.String("broker", "localhost:7001", "broker TCP address")
	subscribe := fs.String("subscribe", "", "subscription filter expression")
	mobile := fs.Bool("mobile", false, "make the subscription relocatable")
	advertise := fs.String("advertise", "", "advertisement filter expression")
	expect := fs.Int("expect", 0, "exit after this many deliveries (0 = run until timeout)")
	timeout := fs.Duration("timeout", 30*time.Second, "maximum time to wait for deliveries")
	var publishes multiFlag
	fs.Var(&publishes, "publish", "notification to publish as k=v,k2=v2 (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return errors.New("-id is required")
	}

	deliveries := make(chan wire.Deliver, 64)
	recv := transport.ReceiverFunc(func(in transport.Inbound) {
		if in.Msg.Type == wire.TypeDeliver && in.Msg.Deliver != nil {
			deliveries <- *in.Msg.Deliver
		}
	})
	link, err := transport.DialTCPClient(*brokerAddr, wire.ClientID(*id), recv)
	if err != nil {
		return err
	}
	defer link.Close()

	if *advertise != "" {
		f, err := filter.Parse(*advertise)
		if err != nil {
			return fmt.Errorf("advertise: %w", err)
		}
		msg := wire.NewAdvertise(wire.Subscription{
			Filter: f, Client: wire.ClientID(*id), ID: "adv",
		})
		if err := link.Send(msg); err != nil {
			return err
		}
	}
	if *subscribe != "" {
		f, err := filter.Parse(*subscribe)
		if err != nil {
			return fmt.Errorf("subscribe: %w", err)
		}
		msg := wire.NewSubscribe(wire.Subscription{
			Filter: f, Client: wire.ClientID(*id), ID: "sub", IsMobile: *mobile,
		})
		if err := link.Send(msg); err != nil {
			return err
		}
	}
	for _, p := range publishes {
		n, err := ParseNotification(p)
		if err != nil {
			return fmt.Errorf("publish %q: %w", p, err)
		}
		if err := link.Send(wire.NewPublish(n)); err != nil {
			return err
		}
	}

	if *subscribe == "" || *expect == 0 {
		// Producer-only invocation (or indefinite consumers are bounded by
		// the timeout below when -expect is 0 and -subscribe set).
		if *subscribe == "" {
			return nil
		}
	}
	received := 0
	deadline := time.After(*timeout)
	for {
		select {
		case d := <-deliveries:
			received++
			tag := ""
			if d.Replayed {
				tag = " (replayed)"
			}
			fmt.Fprintf(out, "#%d %s%s\n", d.Item.Seq, d.Item.Notif, tag)
			if *expect > 0 && received >= *expect {
				return nil
			}
		case <-deadline:
			if *expect > 0 {
				return fmt.Errorf("timed out after %d of %d deliveries", received, *expect)
			}
			return nil
		}
	}
}

// ParseNotification builds a notification from "k=v,k2=v2" syntax. Values
// parse as int, then float, then bool, falling back to string.
func ParseNotification(src string) (message.Notification, error) {
	attrs := make(map[string]message.Value)
	for _, pair := range strings.Split(src, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, raw, ok := strings.Cut(pair, "=")
		if !ok {
			return message.Notification{}, fmt.Errorf("missing '=' in %q", pair)
		}
		name = strings.TrimSpace(name)
		raw = strings.TrimSpace(raw)
		if name == "" {
			return message.Notification{}, fmt.Errorf("empty attribute name in %q", pair)
		}
		attrs[name] = parseValue(raw)
	}
	if len(attrs) == 0 {
		return message.Notification{}, errors.New("empty notification")
	}
	return message.New(attrs), nil
}

func parseValue(raw string) message.Value {
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return message.Int(i)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return message.Float(f)
	}
	switch raw {
	case "true":
		return message.Bool(true)
	case "false":
		return message.Bool(false)
	}
	return message.String(strings.Trim(raw, `"'`))
}
