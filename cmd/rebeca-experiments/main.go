// Command rebeca-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rebeca-experiments -experiment all
//	rebeca-experiments -experiment table1
//	rebeca-experiments -list
//
// With -cpuprofile / -mutexprofile the run is profiled (pprof format),
// so hot paths and lock contention — egress writer shards included — can
// be inspected on the registered scenarios:
//
//	rebeca-experiments -experiment fig8 -cpuprofile cpu.pprof -mutexprofile mutex.pprof
//	go tool pprof cpu.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rebeca-experiments", flag.ContinueOnError)
	name := fs.String("experiment", "all",
		"experiment to run: "+strings.Join(experiments.Names(), ", ")+", or all")
	list := fs.Bool("list", false, "list experiments and exit")
	cpuprofile := fs.String("cpuprofile", "",
		"write a CPU profile of the run to this file")
	mutexprofile := fs.String("mutexprofile", "",
		"write a mutex-contention profile of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return nil
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		// Sample every contention event; the default rate of 0 records
		// nothing.
		runtime.SetMutexProfileFraction(1)
		defer runtime.SetMutexProfileFraction(0)
	}
	out, err := experiments.Run(*name)
	if err != nil {
		return err
	}
	if *mutexprofile != "" {
		f, cerr := os.Create(*mutexprofile)
		if cerr != nil {
			return fmt.Errorf("-mutexprofile: %w", cerr)
		}
		defer f.Close()
		if perr := pprof.Lookup("mutex").WriteTo(f, 0); perr != nil {
			return fmt.Errorf("-mutexprofile: %w", perr)
		}
	}
	fmt.Print(out)
	return nil
}
