// Command rebeca-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rebeca-experiments -experiment all
//	rebeca-experiments -experiment table1
//	rebeca-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rebeca-experiments", flag.ContinueOnError)
	name := fs.String("experiment", "all",
		"experiment to run: "+strings.Join(experiments.Names(), ", ")+", or all")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return nil
	}
	out, err := experiments.Run(*name)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
