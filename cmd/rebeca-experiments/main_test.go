package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, name := range []string{"table1", "table2", "table3", "table4", "fig2", "fig3", "fig8", "fig9"} {
		if err := run([]string{"-experiment", name}); err != nil {
			t.Errorf("run(%s): %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}
