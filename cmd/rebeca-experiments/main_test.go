package main

import (
	"os"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, name := range []string{"table1", "table2", "table3", "table4", "fig2", "fig3", "fig8", "fig9"} {
		if err := run([]string{"-experiment", name}); err != nil {
			t.Errorf("run(%s): %v", name, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "bogus"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunWithProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mtx := dir + "/mutex.pprof"
	if err := run([]string{"-experiment", "table1", "-cpuprofile", cpu, "-mutexprofile", mtx}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mtx} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunBadProfilePath(t *testing.T) {
	if err := run([]string{"-experiment", "table1", "-cpuprofile", "/nonexistent/dir/cpu.pprof"}); err == nil {
		t.Error("unwritable -cpuprofile should fail")
	}
}
