package main

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/routing"
)

func TestRunRequiresID(t *testing.T) {
	if err := run([]string{"-listen", ":0"}); err == nil {
		t.Error("missing -id should fail")
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	err := run([]string{"-id", "b1", "-strategy", "bogus", "-listen", ":0"})
	if err == nil {
		t.Fatal("bad strategy should fail")
	}
	// The error names the valid strategies, so -strategy typos are
	// self-documenting.
	for _, name := range routing.StrategyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list %q", err, name)
		}
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-id", "b1", "-zzz"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunRejectsUnreachablePeer(t *testing.T) {
	// 127.0.0.1:1 is essentially guaranteed closed.
	err := run([]string{"-id", "b1", "-listen", "127.0.0.1:0", "-peer", "127.0.0.1:1"})
	if err == nil {
		t.Error("unreachable peer should fail")
	}
}

func TestRunRejectsBadFlowFlags(t *testing.T) {
	cases := [][]string{
		{"-id", "b1", "-listen", ":0", "-maxbatch", "-1"},
		{"-id", "b1", "-listen", ":0", "-mailbox-cap", "-2"},
		{"-id", "b1", "-listen", ":0", "-send-window", "0"},
		{"-id", "b1", "-listen", ":0", "-send-policy", "bogus"},
		// Block-bounded mailboxes deadlock on bidirectional broker
		// flows, so the daemon refuses the combination outright.
		{"-id", "b1", "-listen", ":0", "-mailbox-cap", "64", "-mailbox-policy", "block"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunRejectsBadPolicyListingNames(t *testing.T) {
	err := run([]string{"-id", "b1", "-listen", ":0", "-mailbox-policy", "bogus"})
	if err == nil {
		t.Fatal("bad mailbox policy should fail")
	}
	// The error names the valid policies, so typos are self-documenting.
	for _, name := range flow.PolicyNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q should list %q", err, name)
		}
	}
}
