package main

import "testing"

func TestRunRequiresID(t *testing.T) {
	if err := run([]string{"-listen", ":0"}); err == nil {
		t.Error("missing -id should fail")
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	if err := run([]string{"-id", "b1", "-strategy", "bogus", "-listen", ":0"}); err == nil {
		t.Error("bad strategy should fail")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-id", "b1", "-zzz"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunRejectsUnreachablePeer(t *testing.T) {
	// 127.0.0.1:1 is essentially guaranteed closed.
	err := run([]string{"-id", "b1", "-listen", "127.0.0.1:0", "-peer", "127.0.0.1:1"})
	if err == nil {
		t.Error("unreachable peer should fail")
	}
}
