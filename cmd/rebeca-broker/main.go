// Command rebeca-broker runs a single broker over TCP, forming a
// distributed overlay with peers. Brokers listen for peer connections and
// optionally dial existing peers; the overlay must be built as a tree
// (dial each new broker to exactly one existing broker).
//
// Usage:
//
//	rebeca-broker -id b1 -listen :7001
//	rebeca-broker -id b2 -listen :7002 -peer localhost:7001
//	rebeca-broker -id b3 -listen :7003 -peer localhost:7001 -strategy merging
//
// The daemon prints routing-table sizes every -stats interval until
// interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/flow"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-broker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rebeca-broker", flag.ContinueOnError)
	id := fs.String("id", "", "broker id (required)")
	listen := fs.String("listen", ":7001", "TCP listen address")
	peers := fs.String("peer", "", "comma-separated peer addresses to dial")
	strategyName := fs.String("strategy", "covering",
		"routing strategy: "+strings.Join(routing.StrategyNames(), ", ")+" (case-insensitive)")
	statsEvery := fs.Duration("stats", 30*time.Second, "stats print interval")
	workers := fs.Int("workers", 1,
		"publish-matching parallelism (1 = serial pipeline)")
	maxBatch := fs.Int("maxbatch", 0,
		"max tasks drained from the mailbox per batch (0 = unlimited, 1 = one message per lock)")
	mailboxCap := fs.Int("mailbox-cap", 0,
		"mailbox capacity in tasks (0 = unbounded)")
	mailboxPolicy := fs.String("mailbox-policy", flow.ShedNewest.String(),
		"bounded-mailbox overload policy: "+strings.Join(flow.PolicyNames(), ", "))
	sendWindow := fs.Int("send-window", transport.DefaultSendWindow,
		"per-peer TCP send window in frames")
	sendPolicy := fs.String("send-policy", flow.Block.String(),
		"send-window overload policy: "+strings.Join(flow.PolicyNames(), ", "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return errors.New("-id is required")
	}
	strategy, err := routing.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	if *maxBatch < 0 {
		return fmt.Errorf("-maxbatch must be >= 0, got %d", *maxBatch)
	}
	if *mailboxCap < 0 {
		return fmt.Errorf("-mailbox-cap must be >= 0, got %d", *mailboxCap)
	}
	if *sendWindow < 1 {
		return fmt.Errorf("-send-window must be >= 1, got %d", *sendWindow)
	}
	boxPolicy, err := flow.ParsePolicy(*mailboxPolicy)
	if err != nil {
		return fmt.Errorf("-mailbox-policy: %w", err)
	}
	// Block mailboxes are deadlock-prone on bidirectional broker flows
	// (see broker.Options.MailboxPolicy); the daemon refuses the footgun.
	if *mailboxCap > 0 && boxPolicy == flow.Block {
		return fmt.Errorf("-mailbox-policy block is not supported on a networked broker (deadlocks on bidirectional flows); use %s or %s",
			flow.DropOldest, flow.ShedNewest)
	}
	ringPolicy, err := flow.ParsePolicy(*sendPolicy)
	if err != nil {
		return fmt.Errorf("-send-policy: %w", err)
	}
	ring := flow.Options{Capacity: *sendWindow, Policy: ringPolicy}

	b := broker.New(wire.BrokerID(*id), broker.Options{
		Strategy:        strategy,
		Workers:         *workers,
		MaxBatch:        *maxBatch,
		MailboxCapacity: *mailboxCap,
		MailboxPolicy:   boxPolicy,
	})
	b.Start()
	defer b.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *listen, err)
	}
	defer ln.Close()
	box := "unbounded"
	if *mailboxCap > 0 {
		box = fmt.Sprintf("%d tasks, %s", *mailboxCap, boxPolicy)
	}
	log.Printf("broker %s listening on %s (strategy %s, workers %d, maxbatch %d, mailbox %s, send window %d frames %s)",
		*id, ln.Addr(), strategy, *workers, *maxBatch, box, *sendWindow, ringPolicy)

	// Dial configured peers.
	for _, addr := range strings.Split(*peers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		link, err := transport.DialTCP(addr, wire.BrokerID(*id), b, transport.WithSendWindow(ring))
		if err != nil {
			return fmt.Errorf("dial peer %s: %w", addr, err)
		}
		peer := link.Peer().Broker
		if err := b.AddLink(peer, link); err != nil {
			return err
		}
		log.Printf("broker %s connected to peer %s at %s", *id, peer, addr)
	}

	// Accept incoming peers and clients.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			link, err := transport.AcceptTCP(conn, wire.BrokerID(*id), b, transport.WithSendWindow(ring))
			if err != nil {
				log.Printf("handshake failed: %v", err)
				continue
			}
			if link.Peer().IsClient() {
				client := link.Peer().Client
				if err := b.AttachRemoteClient(client, link); err != nil {
					log.Printf("attach client %s: %v", client, err)
					_ = link.Close()
					continue
				}
				log.Printf("broker %s attached client %s", *id, client)
				go func() {
					// When the client's connection dies it becomes a
					// roaming client: detach and let the virtual
					// counterpart buffer until it reappears somewhere.
					<-link.Done()
					if err := b.DetachClient(client); err != nil {
						log.Printf("detach client %s: %v", client, err)
					} else {
						log.Printf("broker %s detached client %s (link closed)", *id, client)
					}
				}()
				continue
			}
			peer := link.Peer().Broker
			if err := b.AddLink(peer, link); err != nil {
				log.Printf("add link %s: %v", peer, err)
				continue
			}
			log.Printf("broker %s accepted peer %s", *id, peer)
		}
	}()

	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			subs, advs := b.TableSizes()
			log.Printf("broker %s: %d subscription entries, %d advertisement entries", *id, subs, advs)
			st := b.Stats()
			log.Printf("broker %s: control plane: %d tracked, %d forwarded, admin sent %d sub / %d unsub, cover checks saved %d, merges active %d (covering %d subs), unmerges %d",
				*id, st.Forwarder.TrackedFilters, st.Forwarder.ForwardedFilters,
				st.ControlSubsSent, st.ControlUnsubsSent, st.CoverChecksSaved,
				st.Forwarder.MergesActive, st.Forwarder.MergeCovered, st.Forwarder.Unmerges)
		case s := <-sig:
			log.Printf("broker %s: received %v, shutting down", *id, s)
			return nil
		}
	}
}
