// Command rebeca-broker runs a single broker over TCP, forming a
// distributed overlay with peers. Brokers listen for peer connections and
// either dial peers given explicitly with -peer (the overlay must be
// built as a tree: dial each new broker to exactly one existing broker)
// or join through a shared registry file with -registry, which also
// re-attaches them when their upstream peer dies.
//
// Usage:
//
//	rebeca-broker -id b1 -listen :7001
//	rebeca-broker -id b2 -listen :7002 -peer localhost:7001
//	rebeca-broker -id b3 -listen :7003 -registry members.txt
//
// See OPERATIONS.md for the full flag reference and tuning guide. The
// daemon prints routing-table sizes every -stats interval until
// interrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/flow"
	"repro/internal/registry"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rebeca-broker:", err)
		os.Exit(1)
	}
}

// brokerFlags holds every command-line option. The struct exists so the
// flag set can be constructed without running the daemon — the
// OPERATIONS.md drift guard walks it with VisitAll.
type brokerFlags struct {
	id             string
	listen         string
	peers          string
	registryPath   string
	heartbeat      time.Duration
	strategyName   string
	statsEvery     time.Duration
	workers        int
	maxBatch       int
	mailboxCap     int
	mailboxPolicy  string
	sendWindow     int
	sendPolicy     string
	egressWriters  int
	egressWindow   int
	egressPolicy   string
	relocBufferCap int
}

// newFlagSet declares the rebeca-broker flags on a fresh FlagSet.
func newFlagSet() (*flag.FlagSet, *brokerFlags) {
	cfg := &brokerFlags{}
	fs := flag.NewFlagSet("rebeca-broker", flag.ContinueOnError)
	fs.StringVar(&cfg.id, "id", "", "broker id (required)")
	fs.StringVar(&cfg.listen, "listen", ":7001", "TCP listen address")
	fs.StringVar(&cfg.peers, "peer", "", "comma-separated peer addresses to dial")
	fs.StringVar(&cfg.registryPath, "registry", "",
		"membership file (one '<id> <addr>' per line); join the overlay through it instead of -peer")
	fs.DurationVar(&cfg.heartbeat, "heartbeat", 2*time.Second,
		"registry heartbeat and rejoin-retry interval (with -registry)")
	fs.StringVar(&cfg.strategyName, "strategy", "covering",
		"routing strategy: "+strings.Join(routing.StrategyNames(), ", ")+" (case-insensitive)")
	fs.DurationVar(&cfg.statsEvery, "stats", 30*time.Second, "stats print interval")
	fs.IntVar(&cfg.workers, "workers", 1,
		"publish-matching parallelism (1 = serial pipeline)")
	fs.IntVar(&cfg.maxBatch, "maxbatch", 0,
		"max tasks drained from the mailbox per batch (0 = unlimited, 1 = one message per lock)")
	fs.IntVar(&cfg.mailboxCap, "mailbox-cap", 0,
		"mailbox capacity in tasks (0 = unbounded)")
	fs.StringVar(&cfg.mailboxPolicy, "mailbox-policy", flow.ShedNewest.String(),
		"bounded-mailbox overload policy: "+strings.Join(flow.PolicyNames(), ", "))
	fs.IntVar(&cfg.sendWindow, "send-window", transport.DefaultSendWindow,
		"per-peer TCP send window in frames")
	fs.StringVar(&cfg.sendPolicy, "send-policy", flow.Block.String(),
		"send-window overload policy: "+strings.Join(flow.PolicyNames(), ", "))
	fs.IntVar(&cfg.egressWriters, "egress-writers", 0,
		"egress writer shards for link writes (0 = write inline on the run loop)")
	fs.IntVar(&cfg.egressWindow, "egress-window", 0,
		"per-shard egress handoff queue bound in messages (0 = unbounded; needs -egress-writers)")
	fs.StringVar(&cfg.egressPolicy, "egress-policy", flow.Block.String(),
		"egress-window overload policy: "+strings.Join(flow.PolicyNames(), ", "))
	fs.IntVar(&cfg.relocBufferCap, "reloc-buffer-cap", 0,
		"per-subscription relocation buffer bound in notifications, drop-oldest (0 = MaxBufferPerSub)")
	return fs, cfg
}

func run(args []string) error {
	fs, cfg := newFlagSet()
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.id == "" {
		return errors.New("-id is required")
	}
	if cfg.peers != "" && cfg.registryPath != "" {
		return errors.New("-peer and -registry are mutually exclusive")
	}
	strategy, err := routing.ParseStrategy(cfg.strategyName)
	if err != nil {
		return err
	}
	if cfg.maxBatch < 0 {
		return fmt.Errorf("-maxbatch must be >= 0, got %d", cfg.maxBatch)
	}
	if cfg.mailboxCap < 0 {
		return fmt.Errorf("-mailbox-cap must be >= 0, got %d", cfg.mailboxCap)
	}
	if cfg.sendWindow < 1 {
		return fmt.Errorf("-send-window must be >= 1, got %d", cfg.sendWindow)
	}
	if cfg.heartbeat <= 0 {
		return fmt.Errorf("-heartbeat must be positive, got %v", cfg.heartbeat)
	}
	boxPolicy, err := flow.ParsePolicy(cfg.mailboxPolicy)
	if err != nil {
		return fmt.Errorf("-mailbox-policy: %w", err)
	}
	// Block mailboxes are deadlock-prone on bidirectional broker flows
	// (see broker.Options.MailboxPolicy); the daemon refuses the footgun.
	if cfg.mailboxCap > 0 && boxPolicy == flow.Block {
		return fmt.Errorf("-mailbox-policy block is not supported on a networked broker (deadlocks on bidirectional flows); use %s or %s",
			flow.DropOldest, flow.ShedNewest)
	}
	ringPolicy, err := flow.ParsePolicy(cfg.sendPolicy)
	if err != nil {
		return fmt.Errorf("-send-policy: %w", err)
	}
	ring := flow.Options{Capacity: cfg.sendWindow, Policy: ringPolicy}
	if cfg.egressWriters < 0 {
		return fmt.Errorf("-egress-writers must be >= 0, got %d", cfg.egressWriters)
	}
	if cfg.egressWindow < 0 {
		return fmt.Errorf("-egress-window must be >= 0, got %d", cfg.egressWindow)
	}
	if cfg.egressWindow > 0 && cfg.egressWriters == 0 {
		return errors.New("-egress-window requires -egress-writers > 0")
	}
	egressPolicy, err := flow.ParsePolicy(cfg.egressPolicy)
	if err != nil {
		return fmt.Errorf("-egress-policy: %w", err)
	}
	if cfg.relocBufferCap < 0 {
		return fmt.Errorf("-reloc-buffer-cap must be >= 0, got %d", cfg.relocBufferCap)
	}

	self := wire.BrokerID(cfg.id)
	b := broker.New(self, broker.Options{
		Strategy:        strategy,
		Workers:         cfg.workers,
		MaxBatch:        cfg.maxBatch,
		MailboxCapacity: cfg.mailboxCap,
		MailboxPolicy:   boxPolicy,
		EgressWriters:   cfg.egressWriters,
		EgressWindow:    cfg.egressWindow,
		EgressPolicy:    egressPolicy,
		RelocBufferCap:  cfg.relocBufferCap,
	})
	b.Start()
	defer b.Close()

	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", cfg.listen, err)
	}
	defer ln.Close()
	box := "unbounded"
	if cfg.mailboxCap > 0 {
		box = fmt.Sprintf("%d tasks, %s", cfg.mailboxCap, boxPolicy)
	}
	egress := "inline"
	if cfg.egressWriters > 0 {
		egress = fmt.Sprintf("%d writers", cfg.egressWriters)
		if cfg.egressWindow > 0 {
			egress += fmt.Sprintf(", window %d %s", cfg.egressWindow, egressPolicy)
		}
	}
	log.Printf("broker %s listening on %s (strategy %s, workers %d, maxbatch %d, mailbox %s, send window %d frames %s, egress %s)",
		cfg.id, ln.Addr(), strategy, cfg.workers, cfg.maxBatch, box, cfg.sendWindow, ringPolicy, egress)

	stop := make(chan struct{})
	defer close(stop)

	// Dial explicitly configured peers (static topology mode).
	for _, addr := range strings.Split(cfg.peers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		link, err := transport.DialTCP(addr, self, b, transport.WithSendWindow(ring))
		if err != nil {
			return fmt.Errorf("dial peer %s: %w", addr, err)
		}
		peer := link.Peer().Broker
		if err := b.AddLink(peer, link); err != nil {
			return err
		}
		watchPeerLink(b, peer, link, stop, nil)
		log.Printf("broker %s connected to peer %s at %s", cfg.id, peer, addr)
	}

	// Registry mode: join through the membership file and stay joined.
	if cfg.registryPath != "" {
		j, err := newJoiner(cfg.registryPath, self, b, ring, cfg.heartbeat, stop)
		if err != nil {
			return err
		}
		defer j.close()
		if err := j.join(); err != nil {
			return err
		}
	}

	// Accept incoming peers and clients.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			link, err := transport.AcceptTCP(conn, self, b, transport.WithSendWindow(ring))
			if err != nil {
				log.Printf("handshake failed: %v", err)
				continue
			}
			if link.Peer().IsClient() {
				client := link.Peer().Client
				if err := b.AttachRemoteClient(client, link); err != nil {
					log.Printf("attach client %s: %v", client, err)
					_ = link.Close()
					continue
				}
				log.Printf("broker %s attached client %s", cfg.id, client)
				go func() {
					// When the client's connection dies it becomes a
					// roaming client: detach and let the virtual
					// counterpart buffer until it reappears somewhere.
					<-link.Done()
					if err := b.DetachClient(client); err != nil {
						log.Printf("detach client %s: %v", client, err)
					} else {
						log.Printf("broker %s detached client %s (link closed)", cfg.id, client)
					}
				}()
				continue
			}
			peer := link.Peer().Broker
			if err := b.AddLink(peer, link); err != nil {
				log.Printf("add link %s: %v", peer, err)
				continue
			}
			watchPeerLink(b, peer, link, stop, nil)
			log.Printf("broker %s accepted peer %s", cfg.id, peer)
		}
	}()

	ticker := time.NewTicker(cfg.statsEvery)
	defer ticker.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-ticker.C:
			subs, advs := b.TableSizes()
			log.Printf("broker %s: %d subscription entries, %d advertisement entries", cfg.id, subs, advs)
			st := b.Stats()
			log.Printf("broker %s: control plane: %d tracked, %d forwarded, admin sent %d sub / %d unsub, cover checks saved %d, merges active %d (covering %d subs), unmerges %d",
				cfg.id, st.Forwarder.TrackedFilters, st.Forwarder.ForwardedFilters,
				st.ControlSubsSent, st.ControlUnsubsSent, st.CoverChecksSaved,
				st.Forwarder.MergesActive, st.Forwarder.MergeCovered, st.Forwarder.Unmerges)
			log.Printf("broker %s: mobility: relocations %d started / %d completed / %d expired, replay %d batches (mean %.1f, max %d items), buffer drops %d",
				cfg.id, st.RelocationsStarted, st.RelocationsCompleted, st.RelocationsExpired,
				st.ReplayBatches, st.ReplayMeanItems, st.ReplayMaxItems, st.RelocBufferDrops)
		case s := <-sig:
			log.Printf("broker %s: received %v, shutting down", cfg.id, s)
			return nil
		}
	}
}

// watchPeerLink retracts a dead peer's routing state when its connection
// drops (Broker.RemoveLink — the same primitive the in-process repair
// path uses) and then runs onDown, if any, to re-attach elsewhere.
func watchPeerLink(b *broker.Broker, peer wire.BrokerID, link *transport.TCPLink, stop <-chan struct{}, onDown func()) {
	go func() {
		select {
		case <-stop:
			return
		case <-link.Done():
		}
		if err := b.RemoveLink(peer); err != nil {
			log.Printf("remove link %s: %v", peer, err)
		} else {
			log.Printf("peer %s link down, routing state retracted", peer)
		}
		if onDown != nil {
			onDown()
		}
	}()
}

// joiner keeps a broker attached to the overlay through a registry file:
// it dials the closest lower-ranked live member (file order is rank), and
// when that upstream dies it retracts the link and re-attaches, retrying
// every heartbeat interval until a lower-ranked member answers.
type joiner struct {
	reg       *registry.File
	self      wire.BrokerID
	b         *broker.Broker
	ring      flow.Options
	heartbeat time.Duration
	stop      <-chan struct{}

	mu     sync.Mutex
	closed bool
}

func newJoiner(path string, self wire.BrokerID, b *broker.Broker, ring flow.Options, heartbeat time.Duration, stop <-chan struct{}) (*joiner, error) {
	reg, err := registry.NewFile(path, registry.FileOptions{})
	if err != nil {
		return nil, fmt.Errorf("-registry: %w", err)
	}
	j := &joiner{reg: reg, self: self, b: b, ring: ring, heartbeat: heartbeat, stop: stop}
	members := reg.Members()
	var me *registry.Member
	for i := range members {
		if members[i].ID == self {
			me = &members[i]
			break
		}
	}
	if me == nil {
		_ = reg.Close()
		return nil, fmt.Errorf("-registry: broker %s is not listed in %s", self, path)
	}
	if err := reg.Register(*me); err != nil {
		_ = reg.Close()
		return nil, fmt.Errorf("-registry: %w", err)
	}
	go j.heartbeatLoop()
	return j, nil
}

// rank returns this broker's position in the membership file and the
// current member list (the file is re-read, so edits are honored).
func (j *joiner) rank() (int, []registry.Member) {
	members := j.reg.Members()
	for i, m := range members {
		if m.ID == j.self {
			return i, members
		}
	}
	return -1, members
}

// join dials the closest lower-ranked live member and watches the
// resulting upstream link; rank 0 (or a broker no longer listed) owns the
// root of the tree and dials nobody. Retries every heartbeat interval —
// lower-ranked members may simply not have started yet.
func (j *joiner) join() error {
	for {
		rank, members := j.rank()
		if rank <= 0 {
			return nil
		}
		for i := rank - 1; i >= 0; i-- {
			m := members[i]
			link, err := transport.DialTCP(m.Addr, j.self, j.b, transport.WithSendWindow(j.ring))
			if err != nil {
				log.Printf("join: dial %s (%s): %v", m.ID, m.Addr, err)
				continue
			}
			peer := link.Peer().Broker
			if err := j.b.AddLink(peer, link); err != nil {
				_ = link.Close()
				return err
			}
			watchPeerLink(j.b, peer, link, j.stop, j.rejoin)
			log.Printf("join: attached to %s at %s (rank %d -> %d)", peer, m.Addr, rank, i)
			return nil
		}
		log.Printf("join: no lower-ranked member of %d reachable, retrying in %v", rank, j.heartbeat)
		select {
		case <-j.stop:
			return nil
		case <-time.After(j.heartbeat):
		}
	}
}

// rejoin re-attaches after the upstream link died.
func (j *joiner) rejoin() {
	j.mu.Lock()
	closed := j.closed
	j.mu.Unlock()
	if closed {
		return
	}
	select {
	case <-j.stop:
		return
	default:
	}
	if err := j.join(); err != nil {
		log.Printf("rejoin: %v", err)
	}
}

// heartbeatLoop refreshes the registration until the daemon stops.
func (j *joiner) heartbeatLoop() {
	t := time.NewTicker(j.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			if err := j.reg.Heartbeat(j.self); err != nil {
				log.Printf("registry heartbeat: %v", err)
			}
		}
	}
}

func (j *joiner) close() {
	j.mu.Lock()
	j.closed = true
	j.mu.Unlock()
	_ = j.reg.Deregister(j.self)
	_ = j.reg.Close()
}
