package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/flow"
	"repro/internal/transport"
	"repro/internal/wire"
)

// testNode is one in-process broker with a TCP listener, mirroring the
// daemon's accept loop closely enough to exercise the joiner against real
// connections.
type testNode struct {
	id wire.BrokerID
	b  *broker.Broker
	ln net.Listener

	mu    sync.Mutex
	links []*transport.TCPLink
}

func startNode(t *testing.T, id wire.BrokerID) *testNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{id: id, b: broker.New(id, broker.Options{}), ln: ln}
	n.b.Start()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			link, err := transport.AcceptTCP(conn, id, n.b)
			if err != nil {
				continue
			}
			peer := link.Peer().Broker
			if err := n.b.AddLink(peer, link); err != nil {
				_ = link.Close()
				continue
			}
			n.mu.Lock()
			n.links = append(n.links, link)
			n.mu.Unlock()
		}
	}()
	t.Cleanup(func() { n.kill() })
	return n
}

// kill crash-stops the node: listener and every accepted connection die.
func (n *testNode) kill() {
	_ = n.ln.Close()
	n.mu.Lock()
	links := n.links
	n.links = nil
	n.mu.Unlock()
	for _, l := range links {
		_ = l.Close()
	}
	n.b.Close()
}

func (n *testNode) addr() string { return n.ln.Addr().String() }

// hasNeighbor polls until the broker's neighbor set contains want.
func hasNeighbor(t *testing.T, b *broker.Broker, want wire.BrokerID) bool {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, id := range b.Neighbors() {
			if id == want {
				return true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestJoinerAttachesAndRejoins builds a three-member registry overlay:
// b3 (rank 2) must first attach to b2 (the closest lower rank), and when
// b2 crashes it must retract the dead link and re-attach to b1.
func TestJoinerAttachesAndRejoins(t *testing.T) {
	b1 := startNode(t, "b1")
	b2 := startNode(t, "b2")
	b3 := startNode(t, "b3")

	regPath := filepath.Join(t.TempDir(), "members.txt")
	reg := fmt.Sprintf("b1 %s\nb2 %s\nb3 %s\n", b1.addr(), b2.addr(), b3.addr())
	if err := os.WriteFile(regPath, []byte(reg), 0o644); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	defer close(stop)
	ring := flow.Options{Capacity: transport.DefaultSendWindow, Policy: flow.Block}

	// b2 joins under b1.
	j2, err := newJoiner(regPath, "b2", b2.b, ring, 30*time.Millisecond, stop)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if err := j2.join(); err != nil {
		t.Fatal(err)
	}
	if !hasNeighbor(t, b2.b, "b1") {
		t.Fatal("b2 did not attach to b1")
	}

	// b3 joins under b2 (closest lower rank).
	j3, err := newJoiner(regPath, "b3", b3.b, ring, 30*time.Millisecond, stop)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.close()
	if err := j3.join(); err != nil {
		t.Fatal(err)
	}
	if !hasNeighbor(t, b3.b, "b2") {
		t.Fatal("b3 did not attach to b2")
	}

	// Crash b2: b3's upstream link dies, the joiner retracts it and
	// re-attaches to the next lower-ranked live member, b1.
	b2.kill()
	if !hasNeighbor(t, b3.b, "b1") {
		t.Fatal("b3 did not re-attach to b1 after b2 crashed")
	}
}

// TestJoinerRejectsUnlistedBroker: a broker not present in the membership
// file must not come up in registry mode.
func TestJoinerRejectsUnlistedBroker(t *testing.T) {
	regPath := filepath.Join(t.TempDir(), "members.txt")
	if err := os.WriteFile(regPath, []byte("b1 127.0.0.1:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b := broker.New("ghost", broker.Options{})
	b.Start()
	defer b.Close()
	stop := make(chan struct{})
	defer close(stop)
	_, err := newJoiner(regPath, "ghost", b, flow.Options{}, time.Second, stop)
	if err == nil {
		t.Fatal("unlisted broker must be rejected")
	}
}

// TestRunRejectsPeerAndRegistry: the two join modes are mutually
// exclusive.
func TestRunRejectsPeerAndRegistry(t *testing.T) {
	err := run([]string{"-id", "b1", "-listen", ":0",
		"-peer", "127.0.0.1:1", "-registry", "/nonexistent"})
	if err == nil {
		t.Fatal("-peer with -registry should fail")
	}
}

// TestRunRejectsBadHeartbeat: a non-positive heartbeat is refused.
func TestRunRejectsBadHeartbeat(t *testing.T) {
	err := run([]string{"-id", "b1", "-listen", ":0", "-heartbeat", "-1s"})
	if err == nil {
		t.Fatal("negative heartbeat should fail")
	}
}
