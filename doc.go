// Package repro is a production-quality Go reproduction of "Supporting
// Mobility in Content-Based Publish/Subscribe Middleware" (Fiege, Gärtner,
// Kasten, Zeidler — MIDDLEWARE 2003).
//
// The implementation lives under internal/: the data model with canonical
// sorted attribute slices and a binary codec (message), content-based
// filters with covering and perfect merging (filter), the location
// substrate with movement graphs and ploc (location), location-dependent
// filter templates and widening schedules (locfilter), routing tables
// with a predicate-counting match index, the routing-strategy ladder, and
// the incremental cover/merge control plane (routing), the protocol
// messages shared by all layers (wire), the bounded-queue flow-control
// primitive behind every mailbox and send window (flow), in-process and
// TCP FIFO links (transport), the batched broker engine with serial or
// sharded-parallel matching, the physical-mobility relocation protocol,
// and logical-mobility location-dependent filters (broker), pluggable
// overlay membership with heartbeat failure detection (registry), the
// embedding API with self-healing overlays and client failover (core),
// the Section 3 baselines (baseline), a deterministic simulator (sim),
// the experiment harness regenerating every table and figure
// (experiments), message-category counters (metrics), and the godoc and
// OPERATIONS.md drift guards (doclint, opsdoc).
//
// Two binaries wrap the library: cmd/rebeca-broker, a TCP broker daemon
// that joins a static (-peer) or self-healing registry-backed (-registry)
// overlay, and cmd/rebeca-client, a shell client with failover across a
// broker list. Runnable embeddings live under examples/.
//
// See README.md for a walkthrough, OPERATIONS.md for running and tuning
// the binaries, DESIGN.md for the system inventory, and EXPERIMENTS.md
// for the paper-versus-measured record. bench_test.go in this directory
// regenerates every evaluation artifact as a Go benchmark.
package repro
