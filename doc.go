// Package repro is a production-quality Go reproduction of "Supporting
// Mobility in Content-Based Publish/Subscribe Middleware" (Fiege, Gärtner,
// Kasten, Zeidler — MIDDLEWARE 2003).
//
// The implementation lives under internal/: the data model (message),
// content-based filters with covering and merging (filter), the location
// substrate with movement graphs and ploc (location), routing tables with
// a predicate-counting match index and the routing strategies (routing),
// FIFO transports (transport), the broker engine
// with the physical-mobility relocation protocol and logical-mobility
// location-dependent filters (broker), the public client API (core), the
// Section 3 baselines (baseline), a deterministic simulator (sim), and the
// experiment harness regenerating every table and figure (experiments).
//
// See README.md for a walkthrough, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record. bench_test.go in
// this directory regenerates every evaluation artifact as a Go benchmark.
package repro
