// Quickstart: a three-broker overlay, one producer, one consumer.
//
//	go run ./examples/quickstart
//
// Demonstrates the four pub/sub primitives (pub, sub, unsub, notify) over
// a content-based filter written in the subscription language.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build the overlay: b1 — b2 — b3.
	net := core.NewNetwork()
	defer net.Close()
	for _, id := range []wire.BrokerID{"b1", "b2", "b3"} {
		if _, err := net.AddBroker(id); err != nil {
			return err
		}
	}
	if err := net.Connect("b1", "b2", 0); err != nil {
		return err
	}
	if err := net.Connect("b2", "b3", 0); err != nil {
		return err
	}

	// The consumer attaches at b1 and prints whatever it receives.
	done := make(chan struct{})
	consumer, err := net.NewClient("alice", "b1", func(e core.Event) {
		fmt.Printf("alice got #%d: %s\n", e.Seq, e.Notification)
		if e.Seq == 2 {
			close(done)
		}
	})
	if err != nil {
		return err
	}

	// Subscribe with a content-based filter.
	f, err := filter.Parse(`type = "quote" && sym = "ACME" && price < 150`)
	if err != nil {
		return err
	}
	if err := consumer.Subscribe(core.SubSpec{ID: "quotes", Filter: f}); err != nil {
		return err
	}
	net.Settle()

	// The producer attaches at b3 and publishes three notifications; the
	// middle one does not match the filter.
	producer, err := net.NewClient("ticker", "b3", nil)
	if err != nil {
		return err
	}
	for _, q := range []struct {
		sym   string
		price int64
	}{{"ACME", 120}, {"ACME", 200}, {"ACME", 99}} {
		n := message.New(map[string]message.Value{
			"type":  message.String("quote"),
			"sym":   message.String(q.sym),
			"price": message.Int(q.price),
		})
		if err := producer.Publish(n); err != nil {
			return err
		}
	}
	<-done

	// Unsubscribe: further publications are not delivered.
	if err := consumer.Unsubscribe("quotes"); err != nil {
		return err
	}
	net.Settle()
	fmt.Println("unsubscribed — done")
	return nil
}
