// Roaming: physical mobility (Section 4) — a stock-quote consumer is
// seamlessly transferred between border brokers ("stock quote monitoring
// seamlessly transferred from PCs to PDAs", Section 3.1).
//
//	go run ./examples/roaming
//
// While the consumer is disconnected, its old border broker keeps a
// virtual counterpart buffering matching notifications. On reattachment at
// a different broker, the relocation protocol (junction detection, fetch,
// replay) delivers every quote exactly once, in order — the example
// verifies the sequence numbers to prove it.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/message"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Overlay modeled on Figure 5:
	//
	//	b1 — b2 — b3 — b4 — b6   (b6: old location, b1: new location)
	//	           |
	//	          b5             (producer)
	net := core.NewNetwork()
	defer net.Close()
	for _, id := range []wire.BrokerID{"b1", "b2", "b3", "b4", "b5", "b6"} {
		if _, err := net.AddBroker(id); err != nil {
			return err
		}
	}
	for _, e := range [][2]wire.BrokerID{
		{"b1", "b2"}, {"b2", "b3"}, {"b3", "b4"}, {"b4", "b6"}, {"b3", "b5"},
	} {
		if err := net.Connect(e[0], e[1], 0); err != nil {
			return err
		}
	}

	var mu sync.Mutex
	var seqs []uint64
	consumer, err := net.NewClient("pda", "b6", func(e core.Event) {
		mu.Lock()
		seqs = append(seqs, e.Seq)
		mu.Unlock()
		tag := ""
		if e.Replayed {
			tag = " (replayed)"
		}
		price, _ := e.Notification.Get("price")
		fmt.Printf("quote #%d: ACME @ %d%s\n", e.Seq, price.IntVal(), tag)
	})
	if err != nil {
		return err
	}
	producer, err := net.NewClient("exchange", "b5", nil)
	if err != nil {
		return err
	}
	f := filter.MustParse(`sym = "ACME"`)
	if err := producer.Advertise("adv", f); err != nil {
		return err
	}
	net.Settle()

	// Mobile subscription: survives roaming.
	if err := consumer.Subscribe(core.SubSpec{ID: "q", Filter: f, Mobile: true}); err != nil {
		return err
	}
	net.Settle()

	publish := func(price int64) error {
		return producer.Publish(message.New(map[string]message.Value{
			"sym":   message.String("ACME"),
			"price": message.Int(price),
		}))
	}

	// Connected at b6.
	for p := int64(100); p < 103; p++ {
		if err := publish(p); err != nil {
			return err
		}
	}
	net.Settle()

	// The user unplugs; quotes keep flowing into the virtual counterpart.
	fmt.Println("-- consumer disconnects (commute) --")
	if err := consumer.Detach(); err != nil {
		return err
	}
	for p := int64(103); p < 107; p++ {
		if err := publish(p); err != nil {
			return err
		}
	}
	net.Settle()

	// Reattach at the office (b1): the relocation protocol replays the
	// missed quotes before the live stream resumes.
	fmt.Println("-- consumer reattaches at b1 --")
	if err := consumer.MoveTo("b1"); err != nil {
		return err
	}
	net.Settle()
	for p := int64(107); p < 110; p++ {
		if err := publish(p); err != nil {
			return err
		}
	}
	net.Settle()
	consumer.Flush()

	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 10 {
		return fmt.Errorf("received %d quotes, want 10", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			return fmt.Errorf("sequence violated at %d: got %d (loss, duplicate, or reorder)", i, s)
		}
	}
	fmt.Printf("received %d quotes, gapless and in order — roaming was transparent\n", len(seqs))
	return nil
}
