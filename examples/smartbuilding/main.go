// Smartbuilding: logical mobility within a single border broker
// (Section 3.3's example: "clients move around a house or building that is
// served by only one border broker" and want "just those notifications
// that refer to the room he is currently located in").
//
//	go run ./examples/smartbuilding
//
// A user walks office → corridor → meeting room; room-scoped events
// (displays, sensors, announcements) follow along. The example also shows
// that a physically adjacent room's events start flowing toward the user's
// broker before the user arrives (the ploc widening), which is what makes
// the room switch instantaneous.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One border broker serves the building; the facility backbone hangs
	// behind it.
	net := core.NewNetwork(core.WithProcDelay(80 * time.Millisecond))
	defer net.Close()
	for _, id := range []wire.BrokerID{"building", "backbone"} {
		if _, err := net.AddBroker(id); err != nil {
			return err
		}
	}
	if err := net.Connect("building", "backbone", 0); err != nil {
		return err
	}

	// Floor plan as a movement graph.
	floor := location.NewGraph()
	floor.AddEdge("office", "corridor")
	floor.AddEdge("corridor", "meeting-room")
	floor.AddEdge("corridor", "kitchen")
	if err := net.RegisterGraph("floor", floor); err != nil {
		return err
	}

	// Facility services publish through the backbone.
	facility, err := net.NewClient("facility", "backbone", nil)
	if err != nil {
		return err
	}
	if err := facility.Advertise("adv", filter.MustParse(`type = "room-event"`)); err != nil {
		return err
	}
	net.Settle()

	events := make(chan core.Event, 16)
	badge, err := net.NewClient("badge-42", "building", func(e core.Event) { events <- e })
	if err != nil {
		return err
	}
	base := filter.MustNew(
		filter.EQ("type", message.String("room-event")),
		filter.EQ("room", message.String("$myloc")),
	)
	err = badge.Subscribe(core.SubSpec{
		ID:     "here",
		Filter: base,
		Loc:    &core.LocSpec{Graph: "floor", Attr: "room", Start: "office", Delta: 2 * time.Second},
	})
	if err != nil {
		return err
	}
	net.Settle()

	publish := func(room, what string) error {
		return facility.Publish(message.New(map[string]message.Value{
			"type": message.String("room-event"),
			"room": message.String(room),
			"what": message.String(what),
		}))
	}
	expect := func(what string) error {
		select {
		case e := <-events:
			w, _ := e.Notification.Get("what")
			room, _ := e.Notification.Get("room")
			fmt.Printf("badge in %-12s event: %s\n", room.Str(), w.Str())
			if w.Str() != what {
				return fmt.Errorf("expected %q, got %q", what, w.Str())
			}
			return nil
		case <-time.After(2 * time.Second):
			return fmt.Errorf("timed out waiting for %q", what)
		}
	}
	expectNone := func() error {
		net.Settle()
		select {
		case e := <-events:
			return fmt.Errorf("unexpected event: %s", e.Notification)
		default:
			return nil
		}
	}

	// In the office: office events arrive, kitchen events do not.
	if err := publish("office", "display: your 9:00 standup"); err != nil {
		return err
	}
	if err := publish("kitchen", "coffee machine done"); err != nil {
		return err
	}
	if err := expect("display: your 9:00 standup"); err != nil {
		return err
	}
	if err := expectNone(); err != nil {
		return err
	}

	// Walk to the corridor, then into the meeting room; each room switch
	// is frictionless.
	for _, move := range []struct {
		room location.Location
		what string
	}{
		{"corridor", "wayfinding: meeting room B is to your left"},
		{"meeting-room", "projector: presentation started"},
	} {
		if err := badge.SetLocation("here", move.room); err != nil {
			return err
		}
		net.Settle()
		if err := publish(string(move.room), move.what); err != nil {
			return err
		}
		if err := expect(move.what); err != nil {
			return err
		}
	}

	// A direct jump meeting-room → kitchen is not a legal movement step.
	if err := badge.SetLocation("here", "kitchen"); err == nil {
		return fmt.Errorf("movement graph should have rejected meeting-room -> kitchen")
	}
	fmt.Println("smartbuilding example done")
	return nil
}
