// Parking: the paper's motivating scenario (Section 1) — a car driving
// through a city street grid with a location-dependent subscription for
// free parking spaces "in the vicinity of the current location".
//
//	go run ./examples/parking
//
// The car subscribes with the myloc marker; the middleware widens the
// subscription along the broker path (ploc), so when the car moves, the
// exact client-side filter switches instantly — no blackout — while the
// network only ever carries notifications the car might plausibly need.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/location"
	"repro/internal/message"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// City infrastructure: a chain of three brokers; the parking sensors
	// publish through the far end.
	net := core.NewNetwork(core.WithProcDelay(100 * time.Millisecond))
	defer net.Close()
	for _, id := range []wire.BrokerID{"downtown", "midtown", "uptown"} {
		if _, err := net.AddBroker(id); err != nil {
			return err
		}
	}
	if err := net.Connect("downtown", "midtown", 0); err != nil {
		return err
	}
	if err := net.Connect("midtown", "uptown", 0); err != nil {
		return err
	}

	// The street grid: 5×5 blocks; the car can move one block per step.
	grid := location.Grid(5, 5)
	if err := net.RegisterGraph("city", grid); err != nil {
		return err
	}

	// Parking sensors advertise and publish through "uptown".
	sensors, err := net.NewClient("sensors", "uptown", nil)
	if err != nil {
		return err
	}
	advFilter := filter.MustParse(`service = "parking"`)
	if err := sensors.Advertise("parking", advFilter); err != nil {
		return err
	}
	net.Settle()

	// The car attaches downtown and subscribes location-dependently:
	// (service = "parking"), (location ∈ myloc), (cost < 3).
	deliveries := make(chan core.Event, 16)
	car, err := net.NewClient("car", "downtown", func(e core.Event) {
		deliveries <- e
	})
	if err != nil {
		return err
	}
	base := filter.MustNew(
		filter.EQ("service", message.String("parking")),
		filter.EQ("location", message.String("$myloc")),
		filter.LT("cost", message.Float(3.0)),
	)
	start := location.GridName(0, 0)
	err = car.Subscribe(core.SubSpec{
		ID:     "spaces",
		Filter: base,
		Loc: &core.LocSpec{
			Graph: "city",
			Attr:  "location",
			Start: start,
			Delta: time.Second,
		},
	})
	if err != nil {
		return err
	}
	net.Settle()

	publish := func(x, y int, cost float64) error {
		return sensors.Publish(message.New(map[string]message.Value{
			"service":  message.String("parking"),
			"location": message.String(string(location.GridName(x, y))),
			"cost":     message.Float(cost),
			"spots":    message.Int(1),
		}))
	}

	// Free space at the car's block: delivered. Far away: not delivered.
	// Too expensive: not delivered.
	if err := publish(0, 0, 2.0); err != nil {
		return err
	}
	if err := publish(4, 4, 1.0); err != nil {
		return err
	}
	if err := publish(0, 0, 9.5); err != nil {
		return err
	}
	net.Settle()
	fmt.Printf("car at %s received: %s\n", start, (<-deliveries).Notification)

	// The car drives east two blocks; each move is declared to the
	// middleware, which adapts the filters without a blackout.
	for _, step := range []location.Location{location.GridName(1, 0), location.GridName(2, 0)} {
		if err := car.SetLocation("spaces", step); err != nil {
			return err
		}
		net.Settle()
		if err := publish(int(step[3]-'0'), 0, 1.5); err != nil {
			return err
		}
		net.Settle()
		e := <-deliveries
		loc, _ := e.Notification.Get("location")
		fmt.Printf("car at %s received: free space at %s\n", step, loc.Str())
	}

	select {
	case e := <-deliveries:
		return fmt.Errorf("unexpected extra delivery: %s", e.Notification)
	default:
	}
	fmt.Println("parking example done")
	return nil
}
