#!/usr/bin/env python3
"""Benchmark regression gate.

Parses two `go test -bench` output files (base and head), averages ns/op
per benchmark across repeated -count runs, and computes the geometric mean
of the head/base time ratios over the benchmarks common to both files.
Exits non-zero when that geomean exceeds the given threshold (e.g. 1.15 =
fail on a >15% regression).

Benchmarks present on only one side (new or deleted benchmarks) are
reported but excluded from the geomean, so adding a benchmark in a PR
cannot trip the gate.
"""
import math
import re
import sys

LINE = re.compile(r"^(Benchmark\S+)\s+\d+\s+([\d.]+) ns/op")


def parse(path):
    sums, counts = {}, {}
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if not m:
                continue
            name, ns = m.group(1), float(m.group(2))
            sums[name] = sums.get(name, 0.0) + ns
            counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def main():
    if len(sys.argv) != 4:
        sys.exit("usage: benchgate.py base.txt head.txt threshold")
    base, head = parse(sys.argv[1]), parse(sys.argv[2])
    threshold = float(sys.argv[3])

    # An empty side means the bench run produced no results (build break,
    # panic, or a GATED regex that matches nothing) — that must fail the
    # gate loudly, not skip it.
    if not base:
        sys.exit(f"FAIL: no benchmark results parsed from {sys.argv[1]}")
    if not head:
        sys.exit(f"FAIL: no benchmark results parsed from {sys.argv[2]}")

    common = sorted(set(base) & set(head))
    only_head = sorted(set(head) - set(base))
    only_base = sorted(set(base) - set(head))
    if only_head:
        print("new benchmarks (not gated):", ", ".join(only_head))
    if only_base:
        print("removed benchmarks (not gated):", ", ".join(only_base))
    if not common:
        sys.exit("FAIL: no benchmarks common to base and head; "
                 "the gate cannot compare anything")

    log_sum = 0.0
    for name in common:
        ratio = head[name] / base[name]
        log_sum += math.log(ratio)
        print(f"{name}: {base[name]:.1f} -> {head[name]:.1f} ns/op ({ratio - 1:+.1%})")
    geomean = math.exp(log_sum / len(common))
    print(f"geomean ratio over {len(common)} benchmarks: {geomean:.4f} "
          f"(threshold {threshold:.2f})")
    if geomean > threshold:
        sys.exit(f"FAIL: geomean regression {geomean:.2%} of base exceeds "
                 f"threshold {threshold:.2%}")
    print("OK: within threshold")


if __name__ == "__main__":
    main()
