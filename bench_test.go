// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Tables 1–4, Figures 2, 3, 8, 9), ablation benchmarks for the
// design choices called out in DESIGN.md, and micro-benchmarks for the hot
// paths. Metrics that are not wall-clock (message counts, table sizes,
// factors) are attached with b.ReportMetric so `go test -bench` prints the
// reproduced quantities next to the timings.
package repro_test

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/filter"
	"repro/internal/flow"
	"repro/internal/location"
	"repro/internal/locfilter"
	"repro/internal/message"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTable1Ploc regenerates Table 1 (ploc values on the Figure 7
// movement graph).
func BenchmarkTable1Ploc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Table1()
		if got := tb.Cells[1]["a"].Len(); got != 3 {
			b.Fatalf("ploc(a,1) size = %d", got)
		}
	}
}

// BenchmarkTable2Filters regenerates Table 2 (filter settings along the
// Figure 6 chain for the itinerary a → b → d).
func BenchmarkTable2Filters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2()
		if len(res.Rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable3Instantiations regenerates Table 3 (global sub/unsub and
// flooding as instantiations of the ploc scheme).
func BenchmarkTable3Instantiations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		top, bottom := experiments.Table3()
		if top.Cells[2]["a"].Len() != 3 || bottom.Cells[2]["a"].Len() != 4 {
			b.Fatal("bad instantiation")
		}
	}
}

// BenchmarkTable4Adaptivity regenerates Table 4 (the adaptive widening
// schedule for Δ = 100ms, δ = 120/50/50/20 ms).
func BenchmarkTable4Adaptivity(b *testing.B) {
	cfg := experiments.DefaultTable4Config()
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(cfg)
		if res.Schedule.Steps[3] != 2 {
			b.Fatalf("schedule = %v", res.Schedule.Steps)
		}
	}
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

// BenchmarkFig2NaiveRoaming regenerates Figure 2 and reports the miss and
// duplicate counts of the naive handoff next to the exactly-once protocol.
func BenchmarkFig2NaiveRoaming(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	var res experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig2(cfg)
	}
	b.ReportMetric(float64(res.Naive.Missed), "naive-missed")
	b.ReportMetric(float64(res.Naive.Duplicates), "naive-dups")
	b.ReportMetric(float64(res.Protocol.Missed), "protocol-missed")
	b.ReportMetric(float64(res.Protocol.Duplicates), "protocol-dups")
}

// BenchmarkFig3Blackout regenerates Figure 3 and reports the blackout in
// units of t_d for both routing regimes.
func BenchmarkFig3Blackout(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	var res experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig3(cfg)
	}
	b.ReportMetric(float64(res.Simple.Blackout())/float64(res.Simple.Td), "simple-blackout-td")
	b.ReportMetric(float64(res.Flooding.Blackout())/float64(res.Flooding.Td), "flooding-blackout-td")
}

// BenchmarkFig8Schedule regenerates the Figure 8 schedule estimation.
func BenchmarkFig8Schedule(b *testing.B) {
	cfg := experiments.DefaultTable4Config()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(cfg)
		if len(res.Marks) == 0 {
			b.Fatal("no marks")
		}
	}
}

// BenchmarkFig9MessageCounts regenerates Figure 9 and reports the
// flooding-to-new-algorithm factors at t = 100s.
func BenchmarkFig9MessageCounts(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	var res experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Flooding.At(100), "flooding-msgs")
	b.ReportMetric(res.Delta1.At(100), "delta1-msgs")
	b.ReportMetric(res.Delta10.At(100), "delta10-msgs")
	b.ReportMetric(res.Flooding.At(100)/res.Delta1.At(100), "factor-delta1")
	b.ReportMetric(res.Flooding.At(100)/res.Delta10.At(100), "factor-delta10")
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationRoutingStrategies compares the routing strategies on a
// live overlay: admin traffic and remote routing-table size for a batch of
// overlapping subscriptions.
func BenchmarkAblationRoutingStrategies(b *testing.B) {
	for _, strat := range []routing.Strategy{
		routing.Simple, routing.Identity, routing.Covering, routing.Merging,
	} {
		b.Run(strat.String(), func(b *testing.B) {
			var admin, tableSize float64
			for i := 0; i < b.N; i++ {
				net := core.NewNetwork(core.WithStrategy(strat))
				net.MustAddBroker("edge")
				net.MustAddBroker("hub")
				net.MustConnect("edge", "hub", 0)
				consumer, err := net.NewClient("c", "edge", nil)
				if err != nil {
					b.Fatal(err)
				}
				// 32 overlapping range subscriptions: nested pairs plus
				// adjacent runs, so covering and merging have material to
				// work with.
				for j := 0; j < 32; j++ {
					lo := (j % 8) * 10
					hi := lo + 5 + (j%4)*20
					f := filter.MustNew(filter.Range("p",
						message.Int(int64(lo)), message.Int(int64(hi))))
					err := consumer.Subscribe(core.SubSpec{
						ID:     wire.SubID(fmt.Sprintf("s%d", j)),
						Filter: f,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				net.Settle()
				hub, err := net.Broker("hub")
				if err != nil {
					b.Fatal(err)
				}
				subs, _ := hub.TableSizes()
				tableSize = float64(subs)
				admin = float64(net.Counter().Get(metrics.CategoryAdmin))
				net.Close()
			}
			b.ReportMetric(admin, "admin-msgs")
			b.ReportMetric(tableSize, "remote-table-size")
		})
	}
}

// BenchmarkAblationWideningDepth sweeps the fixed widening depth q and
// reports the expected per-notification network cost — the tradeoff the
// adaptivity scheme navigates (q = 1 ≈ trivial sub/unsub, large q ≈
// flooding).
func BenchmarkAblationWideningDepth(b *testing.B) {
	g := location.Grid(10, 10)
	center := location.GridName(5, 5)
	const pathLen = 8
	for _, q := range []int{1, 2, 4, 8, 16} {
		q := q
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			var crossings float64
			for i := 0; i < b.N; i++ {
				size := g.Ploc(center, q).Len()
				crossings = float64(pathLen) * float64(size) / float64(g.Len())
			}
			b.ReportMetric(crossings, "crossings-per-notification")
		})
	}
}

// BenchmarkAblationRelocationDistance measures the live relocation
// protocol as the distance between old and new border broker grows: total
// control traffic per relocation.
func BenchmarkAblationRelocationDistance(b *testing.B) {
	for _, hops := range []int{1, 2, 4, 8} {
		hops := hops
		b.Run(fmt.Sprintf("hops=%d", hops), func(b *testing.B) {
			var control float64
			for i := 0; i < b.N; i++ {
				net := core.NewNetwork()
				ids := make([]wire.BrokerID, hops+1)
				for j := range ids {
					ids[j] = wire.BrokerID(fmt.Sprintf("b%d", j))
					net.MustAddBroker(ids[j])
					if j > 0 {
						net.MustConnect(ids[j-1], ids[j], 0)
					}
				}
				consumer, err := net.NewClient("c", ids[0], func(core.Event) {})
				if err != nil {
					b.Fatal(err)
				}
				producer, err := net.NewClient("p", ids[hops/2], nil)
				if err != nil {
					b.Fatal(err)
				}
				f := filter.MustParse(`k = "v"`)
				if err := producer.Advertise("a", f); err != nil {
					b.Fatal(err)
				}
				net.Settle()
				if err := consumer.Subscribe(core.SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
					b.Fatal(err)
				}
				net.Settle()
				if err := consumer.Detach(); err != nil {
					b.Fatal(err)
				}
				if err := producer.Publish(message.New(map[string]message.Value{
					"k": message.String("v"),
				})); err != nil {
					b.Fatal(err)
				}
				net.Settle()
				before := net.Counter().Get(metrics.CategoryControl)
				if err := consumer.MoveTo(ids[hops]); err != nil {
					b.Fatal(err)
				}
				net.Settle()
				control = float64(net.Counter().Get(metrics.CategoryControl) - before)
				net.Close()
			}
			b.ReportMetric(control, "control-msgs-per-relocation")
		})
	}
}

// BenchmarkAblationPresubscribe contrasts cold handoffs with the
// pre-subscription extension (the paper's conclusion outlook): admin
// traffic spent during the move phase.
func BenchmarkAblationPresubscribe(b *testing.B) {
	for _, presub := range []bool{false, true} {
		presub := presub
		name := "cold"
		if presub {
			name = "presubscribed"
		}
		b.Run(name, func(b *testing.B) {
			var moveAdmin float64
			for i := 0; i < b.N; i++ {
				net := core.NewNetwork()
				ids, err := net.BuildChain("b", 6, 0)
				if err != nil {
					b.Fatal(err)
				}
				consumer, err := net.NewClient("c", ids[0], func(core.Event) {})
				if err != nil {
					b.Fatal(err)
				}
				producer, err := net.NewClient("p", ids[2], nil)
				if err != nil {
					b.Fatal(err)
				}
				f := filter.MustParse(`k = "v"`)
				if err := producer.Advertise("a", f); err != nil {
					b.Fatal(err)
				}
				net.Settle()
				err = consumer.Subscribe(core.SubSpec{
					ID: "s", Filter: f, Mobile: true, Presubscribe: presub,
				})
				if err != nil {
					b.Fatal(err)
				}
				net.Settle()
				if err := consumer.Detach(); err != nil {
					b.Fatal(err)
				}
				before := net.Counter().Get(metrics.CategoryAdmin)
				if err := consumer.MoveTo(ids[5]); err != nil {
					b.Fatal(err)
				}
				net.Settle()
				moveAdmin = float64(net.Counter().Get(metrics.CategoryAdmin) - before)
				net.Close()
			}
			b.ReportMetric(moveAdmin, "admin-msgs-at-move")
		})
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks (hot paths)
// ---------------------------------------------------------------------------

func BenchmarkFilterMatch(b *testing.B) {
	f := filter.MustParse(`service = "parking" && location in {a, b, c} && cost < 3 && spots >= 1`)
	n := message.New(map[string]message.Value{
		"service":  message.String("parking"),
		"location": message.String("b"),
		"cost":     message.Int(2),
		"spots":    message.Int(4),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(n) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkFilterCovers(b *testing.B) {
	wide := filter.MustParse(`p in [0, 100] && svc = "x"`)
	narrow := filter.MustParse(`p in [10, 20] && svc = "x"`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !wide.Covers(narrow) {
			b.Fatal("should cover")
		}
	}
}

func BenchmarkMergeAll(b *testing.B) {
	fs := make([]filter.Filter, 16)
	for i := range fs {
		fs[i] = filter.MustNew(filter.Range("p",
			message.Int(int64(i*10)), message.Int(int64(i*10+10))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := filter.MergeAll(fs)
		if len(out) != 1 {
			b.Fatalf("merged to %d", len(out))
		}
	}
}

func BenchmarkRoutingTableMatch(b *testing.B) {
	tbl := routing.NewTable()
	for i := 0; i < 256; i++ {
		f := filter.MustNew(filter.EQ("topic", message.String(fmt.Sprintf("t%d", i))))
		tbl.Add(routing.Entry{Filter: f, Hop: wire.BrokerHop(wire.BrokerID(fmt.Sprintf("n%d", i%8)))})
	}
	n := message.New(map[string]message.Value{"topic": message.String("t128")})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hops := tbl.MatchingHops(n, wire.Hop{}); len(hops) != 1 {
			b.Fatal("bad match")
		}
	}
}

// matchBenchTable builds a routing table of n entries with a realistic mix
// of predicate shapes: equality on a topic attribute, numeric ranges on a
// price attribute, string prefixes on a path attribute, and a sprinkling of
// set-membership and exists constraints, spread over 16 hops.
func matchBenchTable(n int) (*routing.Table, message.Notification) {
	tbl := routing.NewTable()
	for i := 0; i < n; i++ {
		hop := wire.BrokerHop(wire.BrokerID(fmt.Sprintf("n%d", i%16)))
		var f filter.Filter
		switch i % 4 {
		case 0: // topic equality
			f = filter.MustNew(filter.EQ("topic", message.String(fmt.Sprintf("t%d", i))))
		case 1: // disjoint price range
			lo := int64(i * 10)
			f = filter.MustNew(filter.Range("price", message.Int(lo), message.Int(lo+9)))
		case 2: // path prefix
			f = filter.MustNew(filter.Prefix("path", fmt.Sprintf("/svc%d/", i)))
		default: // membership + presence
			f = filter.MustNew(
				filter.In("region", message.String(fmt.Sprintf("r%d", i)), message.String(fmt.Sprintf("r%d", i+1))),
				filter.Exists("price"),
			)
		}
		tbl.Add(routing.Entry{Filter: f, Hop: hop})
	}
	// The probe matches exactly two entries regardless of table size: the
	// topic-equality entry n4 (eq bucket) and the price-range entry n4+1
	// (interval list), so both posting types complete a match.
	n4 := (n / 2) &^ 3 // multiple of 4: the topic-equality shape
	notif := message.New(map[string]message.Value{
		"topic": message.String(fmt.Sprintf("t%d", n4)),
		"price": message.Int(int64((n4+1)*10 + 5)),
		"path":  message.String("/other/x"),
	})
	return tbl, notif
}

// BenchmarkMatchIndex compares the predicate-counting match index against
// the linear-scan reference at growing table sizes. The acceptance bar for
// the index is ≥2× ns/op and fewer allocs/op at the 1k-entry table.
func BenchmarkMatchIndex(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		tbl, notif := matchBenchTable(n)
		b.Run(fmt.Sprintf("entries=%d/index", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if hops := tbl.MatchingHops(notif, wire.Hop{}); len(hops) == 0 {
					b.Fatal("no match")
				}
			}
		})
		b.Run(fmt.Sprintf("entries=%d/linear", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if hops := tbl.MatchingHopsLinear(notif, wire.Hop{}); len(hops) == 0 {
					b.Fatal("no match")
				}
			}
		})
	}
}

// BenchmarkMatchIndexEntries measures the MatchingEntries path (the broker's
// publish handler) on the 1k-entry mixed table.
func BenchmarkMatchIndexEntries(b *testing.B) {
	tbl, notif := matchBenchTable(1000)
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if es := tbl.MatchingEntries(notif, wire.Hop{}); len(es) == 0 {
				b.Fatal("no match")
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if es := tbl.MatchingEntriesLinear(notif, wire.Hop{}); len(es) == 0 {
				b.Fatal("no match")
			}
		}
	})
}

// matchScaleEntries builds the n-entry shape mix of matchBenchTable as
// ready-made entries for the at-scale benchmarks, with two changes.
// First, the filters are built ahead of time so the build benchmark's
// B/sub metric measures index overhead (rows, postings, interning, hash
// tables) rather than the caller-owned filter objects the index shares.
// Second, the presence constraint sits on the region attribute itself
// instead of on price: an `exists` posting on an attribute every probe
// carries is inherently O(subscriptions) per match — every posting is a
// candidate — and would swamp the sublinear structures this benchmark
// measures (the mixed 100/1k/10k BenchmarkMatchIndex keeps that
// presence-heavy shape).
func matchScaleEntries(n int) ([]routing.Entry, message.Notification) {
	es := make([]routing.Entry, n)
	for i := 0; i < n; i++ {
		hop := wire.BrokerHop(wire.BrokerID(fmt.Sprintf("n%d", i%16)))
		var f filter.Filter
		switch i % 4 {
		case 0: // topic equality
			f = filter.MustNew(filter.EQ("topic", message.String(fmt.Sprintf("t%d", i))))
		case 1: // disjoint price range
			lo := int64(i * 10)
			f = filter.MustNew(filter.Range("price", message.Int(lo), message.Int(lo+9)))
		case 2: // path prefix
			f = filter.MustNew(filter.Prefix("path", fmt.Sprintf("/svc%d/", i)))
		default: // membership + presence on the same attribute
			f = filter.MustNew(
				filter.In("region", message.String(fmt.Sprintf("r%d", i)), message.String(fmt.Sprintf("r%d", i+1))),
				filter.Exists("region"),
			)
		}
		es[i] = routing.Entry{Filter: f, Hop: hop}
	}
	n4 := (n / 2) &^ 3
	notif := message.New(map[string]message.Value{
		"topic": message.String(fmt.Sprintf("t%d", n4)),
		"price": message.Int(int64((n4+1)*10 + 5)),
		"path":  message.String("/other/x"),
	})
	return es, notif
}

// benchMatchIndexScale measures the match index at one table size: bulk
// build (with index bytes per subscription attached as B/sub), steady
// match, and one add/remove churn pair against the full table.
func benchMatchIndexScale(b *testing.B, n int) {
	es, notif := matchScaleEntries(n)
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		var tbl *routing.Table
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tbl = routing.NewTable()
			for j := range es {
				tbl.Add(es[j])
			}
		}
		b.StopTimer()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if tbl.Len() != n {
			b.Fatalf("table has %d entries, want %d", tbl.Len(), n)
		}
		if after.HeapAlloc > before.HeapAlloc {
			b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(n), "B/sub")
		}
	})
	tbl := routing.NewTable()
	for j := range es {
		tbl.Add(es[j])
	}
	b.Run("match", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if hops := tbl.MatchingHops(notif, wire.Hop{}); len(hops) == 0 {
				b.Fatal("no match")
			}
		}
	})
	b.Run("churn", func(b *testing.B) {
		ce := routing.Entry{
			Filter: filter.MustNew(
				filter.EQ("topic", message.String("tchurn")),
				filter.Range("price", message.Int(5), message.Int(50))),
			Hop: wire.BrokerHop("nchurn"),
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !tbl.Add(ce) {
				b.Fatal("add failed")
			}
			if !tbl.Remove(ce) {
				b.Fatal("remove failed")
			}
		}
	})
}

// BenchmarkMatchIndex10k is the 10k anchor of the scaling claim: the same
// shapes and sub-benchmarks as BenchmarkMatchIndex1M two decades down.
func BenchmarkMatchIndex10k(b *testing.B) { benchMatchIndexScale(b, 10_000) }

// BenchmarkMatchIndex100k is the CI-gated mid-scale point (the 1M run is
// too slow to gate; regressions in the index layout fail PRs here).
func BenchmarkMatchIndex100k(b *testing.B) { benchMatchIndexScale(b, 100_000) }

// BenchmarkMatchIndex1M drives the index to 10⁶ subscriptions. The
// acceptance bar (ISSUE 7): match ns/op grows ≪100x from the 10k anchor
// and build reports < 200 B/sub of index overhead.
func BenchmarkMatchIndex1M(b *testing.B) { benchMatchIndexScale(b, 1_000_000) }

// coverBenchFilters builds n distinct filters with heavy covering
// structure for the cover-index scale benchmark: shards of one umbrella
// price range plus ~99 narrow windows on a per-shard topic. The price
// attribute name cycles so attribute fingerprints split the shards into
// many signature buckets (one giant bucket would make every add scan the
// whole index), and the umbrella's zero lower bound makes it sort first
// within its bucket, so covered-witness searches terminate after a
// handful of candidates.
func coverBenchFilters(n int) []filter.Filter {
	fs := make([]filter.Filter, 0, n)
	for shard := 0; len(fs) < n; shard++ {
		attr := fmt.Sprintf("price%03d", shard%256)
		topic := message.String(fmt.Sprintf("t%d", shard))
		fs = append(fs, filter.MustNew(
			filter.EQ("topic", topic),
			filter.Range(attr, message.Int(0), message.Int(1<<20))))
		for w := 0; w < 99 && len(fs) < n; w++ {
			lo := int64(w*10 + 1)
			fs = append(fs, filter.MustNew(
				filter.EQ("topic", topic),
				filter.Range(attr, message.Int(lo), message.Int(lo+8))))
		}
	}
	return fs
}

// BenchmarkCoverIndex100k measures the incremental cover index at 100k
// distinct tracked filters: bulk build (with B/sub of index overhead
// attached) and one add/remove churn pair against the full index.
func BenchmarkCoverIndex100k(b *testing.B) {
	const n = 100_000
	pool := coverBenchFilters(n)
	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		var idx *routing.CoverIndex
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx = routing.NewCoverIndex()
			for _, f := range pool {
				idx.Add(f)
			}
		}
		b.StopTimer()
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if idx.Len() != n {
			b.Fatalf("index has %d items, want %d", idx.Len(), n)
		}
		s := idx.Stats()
		b.ReportMetric(float64(s.Forwarded), "forwarded")
		if after.HeapAlloc > before.HeapAlloc {
			b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(n), "B/sub")
		}
	})
	idx := routing.NewCoverIndex()
	for _, f := range pool {
		idx.Add(f)
	}
	b.Run("churn", func(b *testing.B) {
		churn := filter.MustNew(
			filter.EQ("topic", message.String("t7")),
			filter.Range("price007", message.Int(11), message.Int(14)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.Add(churn)
			idx.Remove(churn)
		}
	})
}

// churnBenchFilters builds n overlapping subscription filters with a
// realistic shape mix — per-topic price windows, wide umbrella ranges,
// path prefixes, and region sets — so the covering poset has both heavy
// cover chains (umbrellas over windows) and disjoint signature buckets.
func churnBenchFilters(n int) []filter.Filter {
	fs := make([]filter.Filter, n)
	for i := 0; i < n; i++ {
		// Topic advances once per shape cycle so narrow windows and wide
		// umbrellas share topics (i%16 would correlate with the i%4 shape
		// selector and leave the pool cover-free); the prime window
		// modulus decorrelates the price offset from the topic.
		topic := fmt.Sprintf("t%d", (i/4)%16)
		switch i % 4 {
		case 0: // narrow per-topic price window
			lo := int64((i % 97) * 10)
			fs[i] = filter.MustNew(
				filter.EQ("topic", message.String(topic)),
				filter.Range("price", message.Int(lo), message.Int(lo+15)))
		case 1: // wide umbrella covering several windows of the same topic
			lo := int64((i % 5) * 100)
			fs[i] = filter.MustNew(
				filter.EQ("topic", message.String(topic)),
				filter.Range("price", message.Int(lo), message.Int(lo+300)))
		case 2: // path prefix (separate signature bucket)
			fs[i] = filter.MustNew(filter.Prefix("path", fmt.Sprintf("/svc%d/", i%32)))
		default: // region membership + presence (third bucket)
			fs[i] = filter.MustNew(
				filter.In("region", message.String(fmt.Sprintf("r%d", i%24)),
					message.String(fmt.Sprintf("r%d", i%24+1))),
				filter.Exists("price"))
		}
	}
	return fs
}

// BenchmarkSubscriptionChurn measures the control-plane cost of one
// roaming handoff (subscribe + unsubscribe of one filter) against a
// forwarder already tracking 1000 subscriptions, for every strategy, in
// both modes: "incremental" drives the delta API (AddFilter/RemoveFilter,
// the broker's hot path since the delta control plane), "batch" the
// pre-refactor equivalent of two full Recompute table scans. The
// acceptance bar is Covering incremental ≥10x faster than Covering
// batch; since the merge-group rework, Merging's delta path is likewise
// group-local and must beat its batch mode.
func BenchmarkSubscriptionChurn(b *testing.B) {
	const existing = 1000
	pool := churnBenchFilters(existing)
	churn := filter.MustNew(
		filter.EQ("topic", message.String("t3")),
		filter.Range("price", message.Int(102), message.Int(107)))
	hop := wire.BrokerHop("up")
	for _, strat := range routing.Strategies() {
		strat := strat
		b.Run(strat.String()+"/incremental", func(b *testing.B) {
			fwd := routing.NewForwarder(strat)
			fwd.Recompute(hop, pool)
			if strat == routing.Covering {
				// Guard the workload itself: a cover-free pool would
				// bench none of the index's covering logic.
				distinct := make(map[string]bool, len(pool))
				for _, f := range pool {
					distinct[f.ID()] = true
				}
				if got := len(fwd.Forwarded(hop)); got == 0 || got >= len(distinct) {
					b.Fatalf("pool has no covering structure: %d forwarded of %d distinct",
						got, len(distinct))
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fwd.AddFilter(hop, churn)
				fwd.RemoveFilter(hop, churn)
			}
		})
		b.Run(strat.String()+"/batch", func(b *testing.B) {
			fwd := routing.NewForwarder(strat)
			fwd.Recompute(hop, pool)
			withChurn := append(append([]filter.Filter{}, pool...), churn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fwd.Recompute(hop, withChurn)
				fwd.Recompute(hop, pool)
			}
		})
	}
}

// BenchmarkSubscriptionChurnBroker measures the same roaming handoff end
// to end through a live covering broker: a hub with three neighbor
// brokers and 1000 existing local subscriptions processes one
// subscribe/unsubscribe pair per iteration, control messages included.
// Before the delta control plane this cost three EntriesNotFrom scans
// plus three quadratic Reduce runs per handoff.
func BenchmarkSubscriptionChurnBroker(b *testing.B) {
	const existing = 1000
	hub := broker.New("hub", broker.Options{Strategy: routing.Covering})
	hub.Start()
	defer hub.Close()
	neighbors := make([]*broker.Broker, 3)
	for i := range neighbors {
		id := wire.BrokerID(fmt.Sprintf("n%d", i))
		n := broker.New(id, broker.Options{Strategy: routing.Covering})
		n.Start()
		defer n.Close()
		neighbors[i] = n
		lh, ln := transport.Pipe(wire.BrokerHop("hub"), wire.BrokerHop(id), hub, n)
		if err := hub.AddLink(id, lh); err != nil {
			b.Fatal(err)
		}
		if err := n.AddLink("hub", ln); err != nil {
			b.Fatal(err)
		}
	}
	if err := hub.AttachClient("c", nil); err != nil {
		b.Fatal(err)
	}
	for i, f := range churnBenchFilters(existing) {
		err := hub.Subscribe(wire.Subscription{
			Filter: f, Client: "c", ID: wire.SubID(fmt.Sprintf("s%d", i)),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	settle := func() {
		for r := 0; r < 4; r++ {
			hub.Barrier()
			for _, n := range neighbors {
				n.Barrier()
			}
		}
	}
	settle()
	churn := filter.MustNew(
		filter.EQ("topic", message.String("t3")),
		filter.Range("price", message.Int(102), message.Int(107)))
	// Baseline after setup so the reported metrics cover only the timed
	// handoffs, normalized per operation (raw totals would scale with
	// b.N and drown benchstat deltas in noise).
	base := hub.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hub.Subscribe(wire.Subscription{Filter: churn, Client: "c", ID: "roam"}); err != nil {
			b.Fatal(err)
		}
		if err := hub.Unsubscribe("c", "roam"); err != nil {
			b.Fatal(err)
		}
	}
	settle()
	b.StopTimer()
	stats := hub.Stats()
	b.ReportMetric(float64(stats.ControlSubsSent-base.ControlSubsSent)/float64(b.N), "ctrl-subs/op")
	b.ReportMetric(float64(stats.CoverChecksSaved-base.CoverChecksSaved)/float64(b.N), "cover-checks-saved/op")
}

func BenchmarkWireCodecRoundTrip(b *testing.B) {
	m := wire.NewPublish(message.New(map[string]message.Value{
		"service":  message.String("parking"),
		"location": message.String("r4c2"),
		"cost":     message.Float(2.5),
		"spots":    message.Int(3),
	}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame, err := wire.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlocGrid(b *testing.B) {
	g := location.Grid(20, 20)
	center := location.GridName(10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Ploc(center, 5).Len() == 0 {
			b.Fatal("empty ploc")
		}
	}
}

func BenchmarkScheduleCompute(b *testing.B) {
	hops := make([]time.Duration, 16)
	for i := range hops {
		hops[i] = time.Duration(20+i*7) * time.Millisecond
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := locfilter.ComputeSchedule(100*time.Millisecond, hops)
		if len(s.Steps) != 17 {
			b.Fatal("bad schedule")
		}
	}
}

// BenchmarkBrokerPublishFanout measures end-to-end publish throughput
// through a hub-and-leaves overlay under heavy fan-out: a producer floods
// the hub, which forwards every notification to 8 leaf brokers, each
// delivering to a local subscriber. The batched mode is the drain-batch
// pipeline (encode-once fan-out, per-hop outboxes, link bursts); the
// unbatched mode (MaxBatch=1) reproduces the seed's one-message-per-lock
// handoff and is the baseline for the ≥2x acceptance bar.
func BenchmarkBrokerPublishFanout(b *testing.B) {
	const leaves = 8
	for _, mode := range []struct {
		name     string
		maxBatch int
	}{
		{"batched", 0},
		{"unbatched", 1},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			opts := broker.Options{MaxBatch: mode.maxBatch}
			hub := broker.New("hub", opts)
			hub.Start()
			defer hub.Close()
			var delivered atomic.Int64
			leafBrokers := make([]*broker.Broker, leaves)
			for i := 0; i < leaves; i++ {
				id := wire.BrokerID(fmt.Sprintf("leaf%d", i))
				leaf := broker.New(id, opts)
				leaf.Start()
				defer leaf.Close()
				leafBrokers[i] = leaf
				lh, ll := transport.Pipe(wire.BrokerHop("hub"), wire.BrokerHop(id), hub, leaf)
				if err := hub.AddLink(id, lh); err != nil {
					b.Fatal(err)
				}
				if err := leaf.AddLink("hub", ll); err != nil {
					b.Fatal(err)
				}
				client := wire.ClientID(fmt.Sprintf("c%d", i))
				if err := leaf.AttachClient(client, func(wire.Deliver) { delivered.Add(1) }); err != nil {
					b.Fatal(err)
				}
				err := leaf.Subscribe(wire.Subscription{
					Filter: filter.MustParse(`sym = "ACME"`), Client: client, ID: "s",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			settle := func() {
				for r := 0; r < leaves+2; r++ {
					hub.Barrier()
					for _, leaf := range leafBrokers {
						leaf.Barrier()
					}
				}
			}
			settle()

			n := message.New(map[string]message.Value{"sym": message.String("ACME")})
			pub := wire.NewPublish(n)
			from := wire.ClientHop("prod")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hub.Receive(transport.Inbound{From: from, Msg: pub})
				if i%8192 == 8191 {
					hub.Barrier() // bound mailbox growth
				}
			}
			settle()
			b.StopTimer()
			if got, want := delivered.Load(), int64(b.N)*leaves; got != want {
				b.Fatalf("delivered %d of %d", got, want)
			}
			stats := hub.Stats()
			b.ReportMetric(stats.MeanBatchSize, "mean-batch")
			b.ReportMetric(float64(stats.MaxBatchSize), "max-batch")
		})
	}
}

// BenchmarkBrokerPublishFanoutParallel measures the parallel publish
// pipeline under a matching-heavy workload: 8 leaf brokers each hold 64
// overlapping symbol+price-range subscriptions (512 aggregate entries in
// the hub's table, hundreds of live intervals per price probe), and 4
// producers storm the hub. workers=1 is the serial pipeline; workers=N
// matches each batch's publish runs on N publisher-sharded workers against
// an immutable routing snapshot, with results applied in batch order. On a
// single-core runner the two modes should be within noise of each other
// (the parity + overhead bound); the ≥1.5x speedup target applies to
// multi-core runners (see EXPERIMENTS.md).
func BenchmarkBrokerPublishFanoutParallel(b *testing.B) {
	const (
		leaves      = 8
		symbols     = 8
		windows     = 8 // price windows per symbol per leaf
		producers   = 4
		priceSpread = 76
	)
	modes := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 1 && n != 4 {
		modes = append(modes, n)
	}
	for _, workers := range modes {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := broker.Options{Workers: workers}
			hub := broker.New("hub", opts)
			hub.Start()
			defer hub.Close()
			var delivered atomic.Int64
			leafBrokers := make([]*broker.Broker, leaves)
			var subFilters []filter.Filter // one leaf's filter set (identical across leaves)
			for s := 0; s < symbols; s++ {
				for w := 0; w < windows; w++ {
					lo := int64(w * 5)
					subFilters = append(subFilters, filter.MustNew(
						filter.EQ("sym", message.String(fmt.Sprintf("S%d", s))),
						filter.Range("price", message.Int(lo), message.Int(lo+40)),
					))
				}
			}
			for i := 0; i < leaves; i++ {
				id := wire.BrokerID(fmt.Sprintf("leaf%d", i))
				leaf := broker.New(id, opts)
				leaf.Start()
				defer leaf.Close()
				leafBrokers[i] = leaf
				lh, ll := transport.Pipe(wire.BrokerHop("hub"), wire.BrokerHop(id), hub, leaf)
				if err := hub.AddLink(id, lh); err != nil {
					b.Fatal(err)
				}
				if err := leaf.AddLink("hub", ll); err != nil {
					b.Fatal(err)
				}
				client := wire.ClientID(fmt.Sprintf("c%d", i))
				if err := leaf.AttachClient(client, func(wire.Deliver) { delivered.Add(1) }); err != nil {
					b.Fatal(err)
				}
				for j, f := range subFilters {
					err := leaf.Subscribe(wire.Subscription{
						Filter: f, Client: client, ID: wire.SubID(fmt.Sprintf("s%d", j)),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
			settle := func() {
				for r := 0; r < leaves+2; r++ {
					hub.Barrier()
					for _, leaf := range leafBrokers {
						leaf.Barrier()
					}
				}
			}
			settle()

			// Deterministic publish mix; expected delivery count per
			// notification is the number of matching subscriptions
			// across all leaves.
			rng := rand.New(rand.NewSource(42))
			const mix = 256
			pubs := make([]wire.Message, mix)
			expect := make([]int64, mix)
			froms := make([]wire.Hop, producers)
			for p := range froms {
				froms[p] = wire.ClientHop(wire.ClientID(fmt.Sprintf("prod%d", p)))
			}
			for i := range pubs {
				n := message.New(map[string]message.Value{
					"sym":   message.String(fmt.Sprintf("S%d", rng.Intn(symbols))),
					"price": message.Int(int64(rng.Intn(priceSpread))),
				})
				pubs[i] = wire.NewPublish(n)
				for _, f := range subFilters {
					if f.Matches(n) {
						expect[i] += leaves
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var want int64
			for i := 0; i < b.N; i++ {
				hub.Receive(transport.Inbound{From: froms[i%producers], Msg: pubs[i%mix]})
				want += expect[i%mix]
				if i%4096 == 4095 {
					hub.Barrier() // bound mailbox growth
				}
			}
			settle()
			b.StopTimer()
			if got := delivered.Load(); got != want {
				b.Fatalf("delivered %d, want %d", got, want)
			}
			stats := hub.Stats()
			b.ReportMetric(float64(stats.WorkerJobs)/float64(b.N), "parallel-job-frac")
			b.ReportMetric(stats.WorkerMeanShardDepth, "mean-shard-depth")
			b.ReportMetric(float64(stats.SubSnapshots.Builds), "snapshot-builds")
		})
	}
}

// BenchmarkEndToEndPublish measures live publish→deliver throughput across
// a three-broker chain.
func BenchmarkEndToEndPublish(b *testing.B) {
	net := core.NewNetwork()
	net.MustAddBroker("b1")
	net.MustAddBroker("b2")
	net.MustAddBroker("b3")
	net.MustConnect("b1", "b2", 0)
	net.MustConnect("b2", "b3", 0)
	defer net.Close()

	var delivered atomic.Int64
	consumer, err := net.NewClient("c", "b1", func(core.Event) { delivered.Add(1) })
	if err != nil {
		b.Fatal(err)
	}
	producer, err := net.NewClient("p", "b3", nil)
	if err != nil {
		b.Fatal(err)
	}
	f := filter.MustParse(`sym = "ACME"`)
	if err := consumer.Subscribe(core.SubSpec{ID: "s", Filter: f}); err != nil {
		b.Fatal(err)
	}
	net.Settle()
	n := message.New(map[string]message.Value{"sym": message.String("ACME")})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := producer.Publish(n); err != nil {
			b.Fatal(err)
		}
	}
	net.Settle()
	b.StopTimer()
	if delivered.Load() != int64(b.N) {
		b.Fatalf("delivered %d of %d", delivered.Load(), b.N)
	}
}

// BenchmarkWireDecodePublish measures the TCP receive path's per-frame
// decode cost for a representative publish. With the canonical slice
// representation and the attribute-name interner this is two allocations:
// the attribute slice and the notification box — no map, no per-name
// string copies on interner hits.
func BenchmarkWireDecodePublish(b *testing.B) {
	frame, err := wire.Encode(wire.NewPublish(message.New(map[string]message.Value{
		"service":     message.String("hvac"),
		"temperature": message.Float(21.5),
		"room":        message.String("r4c2"),
		"floor":       message.Int(4),
	})))
	if err != nil {
		b.Fatal(err)
	}
	// Warm the interner so steady state is measured, not first-contact
	// misses.
	if _, err := wire.Decode(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := wire.Decode(frame)
		if err != nil {
			b.Fatal(err)
		}
		if m.Frame == nil {
			b.Fatal("canonical publish frame not attached")
		}
	}
}

// BenchmarkTransitForward measures the multi-broker hot path the zero-copy
// claim is about: a publish crosses producer → ingress → transit →
// consumer over real TCP links, so the transit broker decodes a canonical
// frame and forwards the received bytes without re-encoding. Reported
// encodes/op counts frame serializations across the whole process per
// delivered notification (publisher-side client encode + at most one
// ingress-side share of pipelined control traffic; the transit broker
// contributes zero).
func BenchmarkTransitForward(b *testing.B) {
	ingress := broker.New("ingress", broker.Options{})
	transit := broker.New("transit", broker.Options{})
	egress := broker.New("egress", broker.Options{})
	for _, br := range []*broker.Broker{ingress, transit, egress} {
		br.Start()
		defer br.Close()
	}
	connectTCP(b, ingress, transit)
	connectTCP(b, transit, egress)

	var delivered atomic.Int64
	if err := egress.AttachClient("c", func(wire.Deliver) { delivered.Add(1) }); err != nil {
		b.Fatal(err)
	}
	if err := ingress.AttachClient("p", nil); err != nil {
		b.Fatal(err)
	}
	if err := egress.Subscribe(wire.Subscription{
		Filter: filter.MustParse(`sym = "ACME"`), Client: "c", ID: "s",
	}); err != nil {
		b.Fatal(err)
	}
	// Subscription propagation crosses two TCP links asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if subs, _ := ingress.TableSizes(); subs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("subscription did not propagate")
		}
		time.Sleep(time.Millisecond)
	}

	n := message.New(map[string]message.Value{"sym": message.String("ACME")})
	settle := func(want int64) {
		deadline := time.Now().Add(30 * time.Second)
		for delivered.Load() < want {
			if time.Now().After(deadline) {
				b.Fatalf("delivered %d of %d", delivered.Load(), want)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	// Warm-up: interner, routes, TCP buffers.
	if err := ingress.Publish("p", n); err != nil {
		b.Fatal(err)
	}
	settle(1)

	encodesBefore := wire.EncodeCalls()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ingress.Publish("p", n); err != nil {
			b.Fatal(err)
		}
	}
	settle(int64(b.N) + 1)
	b.StopTimer()
	b.ReportMetric(float64(wire.EncodeCalls()-encodesBefore)/float64(b.N), "encodes/op")
}

// connectTCP links two in-process brokers over a real localhost TCP
// connection, handshake and framing included.
func connectTCP(b *testing.B, a, c *broker.Broker) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	acceptDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		_ = ln.Close()
		if err != nil {
			acceptDone <- err
			return
		}
		link, err := transport.AcceptTCP(conn, a.ID(), a)
		if err != nil {
			acceptDone <- err
			return
		}
		acceptDone <- a.AddLink(link.Peer().Broker, link)
	}()
	link, err := transport.DialTCP(ln.Addr().String(), c.ID(), c)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.AddLink(link.Peer().Broker, link); err != nil {
		b.Fatal(err)
	}
	if err := <-acceptDone; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWireEncodePublish measures the frame serialization cost of a
// representative publish: the canonical attribute slice appends in order
// (no name collection, no sort) from a pooled scratch buffer.
func BenchmarkWireEncodePublish(b *testing.B) {
	m := wire.NewPublish(message.New(map[string]message.Value{
		"service":     message.String("hvac"),
		"temperature": message.Float(21.5),
		"room":        message.String("r4c2"),
		"floor":       message.Int(4),
	}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Encode(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackpressureStalledLeaf measures the flow-control design under
// an adversarial consumer: a hub fans out to 8 leaves over windowed links
// and bounded Block mailboxes, and in the stalled mode one leaf stops
// consuming entirely (its deliver callback parks until the benchmark
// ends). That leaf's link uses a DropOldest window, so the hub sheds there
// instead of wedging; the timing measures how fast the 7 healthy leaves
// receive the full stream. The acceptance bar is stalled ns/op within 10%
// of unstalled — a dead consumer must not tax its siblings. dropped/op is
// the overflow shed at the stalled link (≈1 in stalled mode, 0 otherwise).
func BenchmarkBackpressureStalledLeaf(b *testing.B) {
	const leaves = 8
	for _, stall := range []bool{false, true} {
		name := "unstalled"
		if stall {
			name = "stalled"
		}
		stall := stall
		b.Run(name, func(b *testing.B) {
			opts := broker.Options{MailboxCapacity: 1024, MailboxPolicy: flow.Block}
			hub := broker.New("hub", opts)
			hub.Start()
			defer hub.Close()

			gate := make(chan struct{})
			var releaseOnce sync.Once
			release := func() { releaseOnce.Do(func() { close(gate) }) }

			var healthy atomic.Int64
			leafBrokers := make([]*broker.Broker, leaves)
			links := make([]*transport.ChanLink, 0, 2*leaves)
			for i := 0; i < leaves; i++ {
				i := i
				id := wire.BrokerID(fmt.Sprintf("leaf%d", i))
				leaf := broker.New(id, opts)
				leaf.Start()
				defer leaf.Close()
				leafBrokers[i] = leaf
				w := flow.Options{Capacity: 256, Policy: flow.Block}
				if stall && i == 0 {
					w.Policy = flow.DropOldest
				}
				lh, ll := transport.Pipe(wire.BrokerHop("hub"), wire.BrokerHop(id),
					hub, leaf, transport.WithWindow(w))
				links = append(links, lh, ll)
				if err := hub.AddLink(id, lh); err != nil {
					b.Fatal(err)
				}
				if err := leaf.AddLink("hub", ll); err != nil {
					b.Fatal(err)
				}
				deliver := func(wire.Deliver) { healthy.Add(1) }
				if i == 0 {
					deliver = func(wire.Deliver) {
						if stall {
							<-gate
						}
					}
				}
				client := wire.ClientID(fmt.Sprintf("c%d", i))
				if err := leaf.AttachClient(client, deliver); err != nil {
					b.Fatal(err)
				}
				err := leaf.Subscribe(wire.Subscription{
					Filter: filter.MustParse(`sym = "ACME"`), Client: client, ID: "s",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// Registered after the leaf Close defers so it runs before them
			// (LIFO): the stalled run loop must unpark for Close to finish.
			defer release()

			for r := 0; r < 4; r++ {
				hub.Barrier()
				for _, leaf := range leafBrokers {
					leaf.Barrier()
				}
				for _, l := range links {
					l.WaitIdle()
				}
			}

			n := message.New(map[string]message.Value{"sym": message.String("ACME")})
			pub := wire.NewPublish(n)
			from := wire.ClientHop("prod")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hub.Receive(transport.Inbound{From: from, Msg: pub})
			}
			want := int64(b.N) * (leaves - 1)
			for healthy.Load() < want {
				runtime.Gosched()
			}
			b.StopTimer()
			stats := hub.Stats()
			b.ReportMetric(float64(stats.LinkDroppedOldest)/float64(b.N), "dropped/op")
			b.ReportMetric(float64(stats.LinkQueueHighWater), "link-hw")
			b.ReportMetric(float64(stats.LinkCreditStalls), "credit-stalls")
		})
	}
}

// BenchmarkEgressFanout measures the sharded egress writer pool on its
// target shape: a hub broker fanning out to 8 leaves over real localhost
// TCP links. writers=0 is the seed pipeline — flushOutbox performs all 8
// SendBatch/Flush syscall sequences inline on the run loop — and
// writers=N moves them onto N writer shards, so the run loop returns to
// matching while the sockets are written concurrently. ns/op is the
// hub-side publish cost including end-to-end settling (every leaf must
// receive every notification); on a multi-core runner throughput scales
// with the writer count until the links per shard even out. flush-ns is
// the mean per-burst link-write latency paid by the writers (writers>0).
func BenchmarkEgressFanout(b *testing.B) {
	const leaves = 8
	for _, writers := range []int{0, 1, 2, 4} {
		writers := writers
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			hub := broker.New("hub", broker.Options{EgressWriters: writers})
			hub.Start()
			defer hub.Close()

			var delivered atomic.Int64
			for i := 0; i < leaves; i++ {
				id := wire.BrokerID(fmt.Sprintf("leaf%d", i))
				leaf := broker.New(id, broker.Options{})
				leaf.Start()
				defer leaf.Close()
				connectTCP(b, hub, leaf)
				client := wire.ClientID(fmt.Sprintf("c%d", i))
				if err := leaf.AttachClient(client, func(wire.Deliver) { delivered.Add(1) }); err != nil {
					b.Fatal(err)
				}
				err := leaf.Subscribe(wire.Subscription{
					Filter: filter.MustParse(`sym = "ACME"`), Client: client, ID: "s",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// Subscription propagation crosses the TCP links asynchronously.
			deadline := time.Now().Add(5 * time.Second)
			for {
				if subs, _ := hub.TableSizes(); subs >= leaves {
					break
				}
				if time.Now().After(deadline) {
					b.Fatal("subscriptions did not propagate")
				}
				time.Sleep(time.Millisecond)
			}

			n := message.New(map[string]message.Value{"sym": message.String("ACME")})
			pub := wire.NewPublish(n)
			from := wire.ClientHop("prod")
			settle := func(want int64) {
				deadline := time.Now().Add(30 * time.Second)
				for delivered.Load() < want {
					if time.Now().After(deadline) {
						b.Fatalf("delivered %d of %d", delivered.Load(), want)
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
			// Warm-up: interner, routes, TCP buffers, writer shards.
			hub.Receive(transport.Inbound{From: from, Msg: pub})
			settle(leaves)

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hub.Receive(transport.Inbound{From: from, Msg: pub})
			}
			settle(int64(b.N+1) * leaves)
			b.StopTimer()
			st := hub.Stats()
			if writers > 0 {
				b.ReportMetric(st.EgressFlushMeanNs, "flush-ns")
				b.ReportMetric(float64(st.EgressQueueHighWater), "egress-hw")
			}
			if st.LinkSendErrorsTotal != 0 {
				b.Fatalf("%d link send errors", st.LinkSendErrorsTotal)
			}
		})
	}
}

// BenchmarkEgressFanoutStalledPeer is the adversarial variant of the
// egress benchmark (informational in CI, not gated): a hub with 4 egress
// writers fans out to 8 leaves over windowed in-process links, and in the
// stalled mode one leaf stops consuming entirely. The stalled leaf's link
// window sheds (DropOldest) so its egress shard keeps draining, while the
// Block egress window keeps healthy traffic lossless — the writer pool
// must hold the 7 healthy leaves at full rate (stalled ns/op within noise
// of unstalled, 0 allocs/op steady state) with the dead peer's loss
// showing up as dropped/op at its link, not as throughput tax.
func BenchmarkEgressFanoutStalledPeer(b *testing.B) {
	const leaves = 8
	for _, stall := range []bool{false, true} {
		name := "unstalled"
		if stall {
			name = "stalled"
		}
		stall := stall
		b.Run(name, func(b *testing.B) {
			leafOpts := broker.Options{MailboxCapacity: 1024, MailboxPolicy: flow.Block}
			hub := broker.New("hub", broker.Options{
				MailboxCapacity: 1024, MailboxPolicy: flow.Block,
				EgressWriters: 4, EgressWindow: 1024, EgressPolicy: flow.Block,
			})
			hub.Start()
			defer hub.Close()

			gate := make(chan struct{})
			var releaseOnce sync.Once
			release := func() { releaseOnce.Do(func() { close(gate) }) }

			var healthy atomic.Int64
			leafBrokers := make([]*broker.Broker, leaves)
			links := make([]*transport.ChanLink, 0, 2*leaves)
			for i := 0; i < leaves; i++ {
				i := i
				id := wire.BrokerID(fmt.Sprintf("leaf%d", i))
				leaf := broker.New(id, leafOpts)
				leaf.Start()
				defer leaf.Close()
				leafBrokers[i] = leaf
				w := flow.Options{Capacity: 256, Policy: flow.Block}
				if stall && i == 0 {
					w.Policy = flow.DropOldest
				}
				lh, ll := transport.Pipe(wire.BrokerHop("hub"), wire.BrokerHop(id),
					hub, leaf, transport.WithWindow(w))
				links = append(links, lh, ll)
				if err := hub.AddLink(id, lh); err != nil {
					b.Fatal(err)
				}
				if err := leaf.AddLink("hub", ll); err != nil {
					b.Fatal(err)
				}
				deliver := func(wire.Deliver) { healthy.Add(1) }
				if i == 0 {
					deliver = func(wire.Deliver) {
						if stall {
							<-gate
						}
					}
				}
				client := wire.ClientID(fmt.Sprintf("c%d", i))
				if err := leaf.AttachClient(client, deliver); err != nil {
					b.Fatal(err)
				}
				err := leaf.Subscribe(wire.Subscription{
					Filter: filter.MustParse(`sym = "ACME"`), Client: client, ID: "s",
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			// Registered after the leaf Close defers so it runs before them
			// (LIFO): the stalled run loop must unpark for Close to finish.
			defer release()

			for r := 0; r < 4; r++ {
				hub.Barrier()
				for _, leaf := range leafBrokers {
					leaf.Barrier()
				}
				for _, l := range links {
					l.WaitIdle()
				}
			}

			n := message.New(map[string]message.Value{"sym": message.String("ACME")})
			pub := wire.NewPublish(n)
			from := wire.ClientHop("prod")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hub.Receive(transport.Inbound{From: from, Msg: pub})
			}
			want := int64(b.N) * (leaves - 1)
			for healthy.Load() < want {
				runtime.Gosched()
			}
			b.StopTimer()
			stats := hub.Stats()
			b.ReportMetric(float64(stats.LinkDroppedOldest)/float64(b.N), "dropped/op")
			b.ReportMetric(float64(stats.EgressQueueHighWater), "egress-hw")
			b.ReportMetric(float64(stats.EgressDroppedOldest)/float64(b.N), "egress-dropped/op")
			b.ReportMetric(stats.EgressFlushMeanNs, "flush-ns")
		})
	}
}

// ---------------------------------------------------------------------------
// Relocation storm (city-scale mobility)
// ---------------------------------------------------------------------------

// stormBackgroundTable fills the broker's subscription table with n
// aggregate entries (the matchScaleEntries shape mix) injected as if its
// chain neighbor had forwarded them. Claiming the neighbor as the origin
// hop matters twice over: the forwarding control plane has no other
// neighbor to propagate the filters to (so setup stays O(n) instead of
// flooding the chain), and split-horizon matching excludes the arrival hop
// (so storm publishes arriving over that link never fan back out into the
// background entries). The table is pure ballast: before the O(k) posting
// lists, every relocation step scanned all n entries to enumerate one
// client's.
func stormBackgroundTable(b *testing.B, br *broker.Broker, from wire.Hop, n int) {
	b.Helper()
	es, _ := matchScaleEntries(n)
	const chunk = 4096
	msgs := make([]wire.Message, 0, chunk)
	for i := range es {
		msgs = append(msgs, wire.NewSubscribe(wire.Subscription{Filter: es[i].Filter}))
		if len(msgs) == chunk {
			br.ReceiveBurst(from, msgs)
			br.Barrier() // bound mailbox depth during the bulk load
			msgs = make([]wire.Message, 0, chunk)
		}
	}
	if len(msgs) > 0 {
		br.ReceiveBurst(from, msgs)
	}
	br.Barrier()
	subs, _ := br.TableSizes()
	if subs < n {
		b.Fatalf("background table holds %d entries, want >= %d", subs, n)
	}
}

// benchRelocationStorm measures relocation latency under load at one
// background table size: R mobile clients ping-pong between the last two
// brokers of a 3-chain whose far end hosts a producer, with one storm
// publish racing each move. Every relocation enumerates the roaming
// client's entries at the ballast broker (junction detection, fetch
// flipping, replay routing), so ns/op is flat across table sizes exactly
// when those paths are O(k) — the tentpole claim. The relocation timeout
// is disabled, so completion always comes from a replay: a lost or
// duplicated notification fails the closing reachability check.
func benchRelocationStorm(b *testing.B, tableSize int) {
	const roamers = 32
	nw := core.NewNetwork(core.WithRelocTimeout(-1))
	defer nw.Close()
	ids, err := nw.BuildChain("s", 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	heavy, err := nw.Broker(ids[2])
	if err != nil {
		b.Fatal(err)
	}
	clients := make([]*core.Client, roamers)
	for i := range clients {
		c, err := nw.NewClient(wire.ClientID(fmt.Sprintf("m%d", i)), ids[2], func(core.Event) {})
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
	}
	producer, err := nw.NewClient("prod", ids[0], nil)
	if err != nil {
		b.Fatal(err)
	}
	f := filter.MustParse(`storm = "go"`)
	if err := producer.Advertise("a", f); err != nil {
		b.Fatal(err)
	}
	nw.Settle()
	for _, c := range clients {
		if err := c.Subscribe(core.SubSpec{ID: "s", Filter: f, Mobile: true}); err != nil {
			b.Fatal(err)
		}
	}
	nw.Settle()
	stormBackgroundTable(b, heavy, wire.BrokerHop(ids[1]), tableSize)

	notif := message.New(map[string]message.Value{"storm": message.String("go")})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := clients[i%roamers]
		target := ids[1] // clients start at ids[2] and strictly alternate
		if (i/roamers)%2 == 1 {
			target = ids[2]
		}
		if err := producer.Publish(notif); err != nil {
			b.Fatal(err)
		}
		if err := c.MoveTo(target); err != nil {
			b.Fatal(err)
		}
		nw.Settle()
	}
	b.StopTimer()

	// Reachability: after the storm every roamer must still receive
	// exactly one copy of a sentinel publish — no severed subscriptions,
	// no duplicate delivery paths left behind by the flips.
	before := nw.Counter().Get(metrics.CategoryDeliver)
	if err := producer.Publish(notif); err != nil {
		b.Fatal(err)
	}
	nw.Settle()
	if got := nw.Counter().Get(metrics.CategoryDeliver) - before; got != roamers {
		b.Fatalf("sentinel publish delivered %d copies, want %d", got, roamers)
	}

	var completed, expired, drops, batches, replayMax uint64
	var replayItems float64
	for _, id := range ids {
		br, err := nw.Broker(id)
		if err != nil {
			b.Fatal(err)
		}
		s := br.Stats()
		completed += s.RelocationsCompleted
		expired += s.RelocationsExpired
		drops += s.RelocBufferDrops
		batches += s.ReplayBatches
		replayItems += s.ReplayMeanItems * float64(s.ReplayBatches)
		if s.ReplayMaxItems > replayMax {
			replayMax = s.ReplayMaxItems
		}
	}
	if expired != 0 {
		b.Fatalf("%d relocations expired with the timeout disabled", expired)
	}
	b.ReportMetric(float64(completed)/float64(b.N), "reloc/op")
	if batches > 0 {
		b.ReportMetric(replayItems/float64(batches), "replay-items/batch")
	}
	b.ReportMetric(float64(replayMax), "replay-max-items")
	b.ReportMetric(float64(drops), "reloc-drops")
}

// BenchmarkRelocationStorm10k is the small anchor for the relocation-storm
// scaling story.
func BenchmarkRelocationStorm10k(b *testing.B) { benchRelocationStorm(b, 10_000) }

// BenchmarkRelocationStorm100k is the CI-gated point: relocation latency
// against a 10⁵-entry ballast table must stay flat relative to the 10k
// anchor (the 1M run is too slow to gate).
func BenchmarkRelocationStorm100k(b *testing.B) { benchRelocationStorm(b, 100_000) }

// BenchmarkRelocationStorm1M drives the storm against a 10⁶-entry table —
// the city-scale acceptance point (informational in CI).
func BenchmarkRelocationStorm1M(b *testing.B) { benchRelocationStorm(b, 1_000_000) }
